#include "cwc/batch/batch_engine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <type_traits>

#include "cwc/sampling.hpp"
#include "util/check.hpp"

namespace cwc::batch {

namespace {

/// FNV-1a over the shape key words.
std::uint64_t hash_key(const std::vector<std::uint64_t>& key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint64_t w : key) {
    h ^= w;
    h *= 0x100000001b3ULL;
    h ^= w >> 32;
    h *= 0x100000001b3ULL;
  }
  return h;
}

kernel_mode resolve_mode(kernel_mode requested) {
  if (requested != kernel_mode::automatic) return requested;
  const char* env = std::getenv("CWCSIM_BATCH_KERNEL");
  if (env != nullptr && std::strcmp(env, "scalar") == 0)
    return kernel_mode::scalar;
  return kernel_mode::wide;
}

}  // namespace

bool batch_engine::supports(const compiled_model& cm) {
  if (!cm.is_tree()) return false;
  // Overlay-aware rule table: an overlay's laws live in its patched copies.
  for (const rule& r : cm.rules())
    if (r.law().law_kind() == rate_law::kind::custom) return false;
  return true;
}

namespace {

std::vector<batch_engine::lane_desc> iota_lanes(std::uint64_t first,
                                                std::size_t width) {
  std::vector<batch_engine::lane_desc> lanes(width);
  for (std::size_t i = 0; i < width; ++i)
    lanes[i] = {first + static_cast<std::uint64_t>(i), 0};
  return lanes;
}

}  // namespace

batch_engine::batch_engine(std::shared_ptr<const compiled_model> cm,
                           std::uint64_t seed,
                           std::uint64_t first_trajectory_id,
                           std::size_t width, kernel_mode mode)
    : batch_engine(
          std::vector<std::shared_ptr<const compiled_model>>{std::move(cm)},
          seed, iota_lanes(first_trajectory_id, width), mode) {}

batch_engine::batch_engine(
    std::vector<std::shared_ptr<const compiled_model>> cells,
    std::uint64_t seed, std::vector<lane_desc> lanes, kernel_mode mode) {
  util::expects(!cells.empty(), "batch_engine needs at least one sweep cell");
  util::expects(!lanes.empty(), "batch_engine needs at least one lane");
  for (const auto& c : cells) {
    util::expects(c != nullptr && c->is_tree(),
                  "batch_engine needs a compiled tree model");
    util::expects(supports(*c),
                  "batch_engine cannot evaluate custom rate laws");
    // One structural root across cells: overlays share their base's model
    // pointer, so tree() equality is exactly "same structure, same shape
    // classes, same match schedules".
    util::expects(c->tree() == cells.front()->tree(),
                  "sweep cells must be rate overlays of one model");
  }
  cells_ = std::move(cells);
  cm_ = cells_.front();
  multi_cell_ = cells_.size() > 1;
  const std::size_t width = lanes.size();
  lane_ids_.resize(width);
  lane_cell_.resize(width);
  for (std::size_t i = 0; i < width; ++i) {
    util::expects(lanes[i].cell < cells_.size(),
                  "lane cell index out of range");
    lane_ids_[i] = lanes[i].trajectory_id;
    lane_cell_[i] = lanes[i].cell;
  }
  num_species_ = cm_->num_species();
  num_rules_ = cm_->num_rules();
  tape_ = &cm_->tape();
  cell_tapes_.resize(cells_.size());
  cell_a_.resize(cells_.size() * num_rules_);
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    cell_tapes_[c] = &cells_[c]->tape();
    for (std::size_t j = 0; j < num_rules_; ++j)
      cell_a_[c * num_rules_ + j] = cell_tapes_[c]->program(j).a;
  }

  use_wide_ = resolve_mode(mode) == kernel_mode::wide;
  // Row sweeps go wide once this many lanes dirtied the same row: the wide
  // kernel re-evaluates all `width` columns, so the break-even point is a
  // fixed SIMD-width-ish cost divided across the dirty lanes. Scalar mode
  // pins the thresholds unreachably high — the fallback kernel by
  // construction.
  if (use_wide_) {
    wide_eval_min_ = std::max<std::size_t>(3, width / 8);
    wide_fold_min_ = std::max<std::size_t>(2, width / 8);
    wide_total_min_ = std::max<std::size_t>(2, width / 8);
    // Flood threshold: past this many fires into one pool in one round,
    // per-fire mask marking costs more than just sweeping the whole pool
    // wide at flush. Scalar mode never floods — a blanket per-column
    // re-evaluation would be strictly more scalar work, not less.
    flood_min_ = std::max<std::size_t>(6, width / 4);
  } else {
    wide_eval_min_ = wide_fold_min_ = wide_total_min_ = SIZE_MAX;
    flood_min_ = SIZE_MAX;
  }
  // Drain density is a control-flow threshold, not a kernel threshold: it
  // stays the same under the forced-scalar fallback so both modes walk the
  // same code shape (only the row sweeps differ).
  drain_density_ = std::max<std::size_t>(2, width / 8);

  build_plans();

  // Lane arrays first: pools size their strips off width().
  lane_pool_.assign(width, nullptr);
  lane_col_.assign(width, 0);

  // Shared initial shape: one pre-order walk of the model's initial term.
  std::vector<shape_class::node> nodes;
  std::vector<std::vector<std::uint32_t>> kids;
  std::vector<const compartment*> comps;  // pre-order, aligned with nodes
  struct walker {
    std::vector<shape_class::node>* nodes;
    std::vector<std::vector<std::uint32_t>>* kids;
    std::vector<const compartment*>* comps;
    std::uint32_t walk(const compartment& c, std::int32_t parent) {
      const auto idx = static_cast<std::uint32_t>(nodes->size());
      nodes->push_back({c.type(), parent});
      kids->emplace_back();
      comps->push_back(&c);
      for (std::size_t i = 0; i < c.num_children(); ++i) {
        const std::uint32_t ci =
            walk(c.child(i), static_cast<std::int32_t>(idx));
        (*kids)[idx].push_back(ci);
      }
      return idx;
    }
  };
  walker{&nodes, &kids, &comps}.walk(cm_->tree()->initial(), -1);
  const shape_class* cls = intern_class(nodes, kids);
  // Every lane starts here: size the initial pool for the full batch.
  class_pool& P = pool_for(cls, width);

  // Dense prototype column (stride 1), then broadcast across the strip —
  // every lane starts from the identical initial state.
  const std::size_t n = cls->nodes.size();
  std::vector<std::uint64_t> pc(n * num_species_, 0);
  std::vector<std::uint64_t> pw(n * num_species_, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (species_id s = 0; s < num_species_; ++s) {
      pc[i * num_species_ + s] = comps[i]->content().count(s);
      pw[i * num_species_ + s] = comps[i]->wrap().count(s);
    }
  }
  std::vector<double> pp(cls->matches.size(), 0.0);
  for (std::uint32_t mi = 0; mi < cls->matches.size(); ++mi)
    pp[mi] = eval_match_dense(*tape_, *cls, mi, pc.data(), pw.data());
  std::vector<double> pb(n, 0.0);
  for (std::uint32_t b = 0; b < n; ++b) {
    double sub = 0.0;
    const std::uint32_t first = cls->block_first[b];
    for (std::uint32_t mi = first; mi < first + cls->block_count[b]; ++mi)
      sub += pp[mi];
    pb[b] = sub;
  }

  for (std::size_t l = 0; l < width; ++l) {
    lane_pool_[l] = &P;
    lane_col_[l] = alloc_col(P);
  }
  const std::size_t cap = P.cap;
  for (std::size_t r = 0; r < n * num_species_; ++r) {
    std::fill_n(&P.content[r * cap], cap, pc[r]);
    std::fill_n(&P.wrap[r * cap], cap, pw[r]);
  }
  for (std::size_t mi = 0; mi < cls->matches.size(); ++mi)
    std::fill_n(&P.prop[mi * cap], cap, pp[mi]);
  for (std::size_t b = 0; b < n; ++b)
    std::fill_n(&P.block_sub[b * cap], cap, pb[b]);

  for (std::size_t l = 0; l < width; ++l)
    P.cell_of[lane_col_[l]] = lane_cell_[l];
  if (multi_cell_) {
    // The proto props carry cell 0's constants. The counts ARE shared (the
    // initial term is structural), so overlay-cell columns just re-evaluate
    // their prop rows through their own tape and refold the subtotals.
    for (std::size_t l = 0; l < width; ++l) {
      if (lane_cell_[l] == 0) continue;
      const std::uint32_t col = lane_col_[l];
      for (std::uint32_t mi = 0; mi < cls->matches.size(); ++mi)
        P.prop[std::size_t{mi} * cap + col] = eval_match_pool(P, mi, col);
      for (std::uint32_t b = 0; b < n; ++b) resum_block_col(P, b, col);
    }
  }

  time_.assign(width, 0.0);
  pending_.assign(width, 0.0);
  has_pending_.assign(width, 0);
  next_sample_k_.assign(width, 0);
  next_sample_t_.assign(width, 0.0);
  lane_slots_.assign(width, 0);
  steps_.assign(width, 0);
  stalled_.assign(width, 0);
  done_.assign(width, 0);
  q_horizon_.assign(width, 0.0);
  q_emit_horizon_.assign(width, 0.0);
  total_scratch_.assign(width, 0.0);
  t_next_scratch_.assign(width, 0.0);
  rng_ = util::rng_lane_bank(seed, lane_ids_);
}

void batch_engine::build_plans() {
  const auto sparse = [](const multiset& m) {
    std::vector<sp_count> out;
    m.for_each([&](species_id s, std::uint64_t n) { out.push_back({s, n}); });
    return out;
  };
  const auto net = [this](const multiset& add, const multiset& sub) {
    std::vector<sp_delta> out;
    for (species_id s = 0; s < num_species_; ++s) {
      const std::int64_t d = static_cast<std::int64_t>(add.count(s)) -
                             static_cast<std::int64_t>(sub.count(s));
      if (d != 0) out.push_back({s, d});
    }
    return out;
  };
  const auto add_read = [](std::vector<species_id>& v, species_id s) {
    if (std::find(v.begin(), v.end(), s) == v.end()) v.push_back(s);
  };

  const auto& rules = cm_->rules();
  plans_.resize(rules.size());
  for (std::size_t j = 0; j < rules.size(); ++j) {
    const rule& r = rules[j];
    rule_plan& p = plans_[j];
    p.reactants = sparse(r.reactants());
    p.host_delta = net(r.products(), r.reactants());
    const auto kind = r.law().law_kind();
    p.has_driver = kind == rate_law::kind::michaelis_menten ||
                   kind == rate_law::kind::hill_repression ||
                   kind == rate_law::kind::hill_activation;
    p.driver = r.law().driver();
    p.driver_in_child = r.law().driver_in_child();
    for (const sp_count& rc : p.reactants) add_read(p.host_reads, rc.sp);
    if (p.has_driver && !p.driver_in_child) add_read(p.host_reads, p.driver);

    if (r.child_pattern().has_value()) {
      const comp_pattern& pat = *r.child_pattern();
      p.has_child = true;
      p.child_type = pat.type;
      p.wrap_req = sparse(pat.wrap_req);
      p.child_req = sparse(pat.content_req);
      p.child_delta = net(r.child_products(), pat.content_req);
      for (const sp_count& rc : p.child_req) add_read(p.child_reads, rc.sp);
      if (p.has_driver && p.driver_in_child) add_read(p.child_reads, p.driver);
    }
    p.fate = r.fate();
    for (const comp_product& cp : r.new_compartments())
      p.creations.push_back({cp.type, sparse(cp.wrap), sparse(cp.content)});
    p.structural = !p.creations.empty() || p.fate != child_fate::keep;
  }
}

const batch_engine::shape_class* batch_engine::intern_class(
    const std::vector<shape_class::node>& nodes,
    const std::vector<std::vector<std::uint32_t>>& kids) {
  key_scratch_.clear();
  key_scratch_.reserve(nodes.size());
  for (const shape_class::node& nd : nodes)
    key_scratch_.push_back((static_cast<std::uint64_t>(nd.type) << 32) |
                           static_cast<std::uint64_t>(nd.parent + 1));
  const std::uint64_t h = hash_key(key_scratch_);
  auto& bucket = classes_by_hash_[h];
  for (const auto& c : bucket)
    if (c->key == key_scratch_) return c.get();

  auto cls = std::make_unique<shape_class>();
  cls->nodes = nodes;
  cls->children = kids;
  cls->key = key_scratch_;

  // Compile the match schedule in the scalar engine's canonical order:
  // compartments in pre-order, applicable rules in declaration order,
  // children in index order. Children whose type cannot match are omitted —
  // the scalar engine computes 0.0 for them and drops them from the list,
  // so omitting them changes neither the fold nor the selection scan.
  const std::size_t n = cls->nodes.size();
  cls->block_first.resize(n);
  cls->block_count.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    cls->block_first[i] = static_cast<std::uint32_t>(cls->matches.size());
    for (const std::uint32_t j : cm_->rules_for_type(cls->nodes[i].type)) {
      const rule_plan& p = plans_[j];
      if (!p.has_child) {
        cls->matches.push_back({i, j, kNone, kNone});
        continue;
      }
      const auto& ch = cls->children[i];
      for (std::uint32_t pos = 0; pos < ch.size(); ++pos)
        if (cls->nodes[ch[pos]].type == p.child_type)
          cls->matches.push_back({i, j, ch[pos], pos});
    }
    cls->block_count[i] =
        static_cast<std::uint32_t>(cls->matches.size()) - cls->block_first[i];
  }

  // Dirty index: which matches read (node, species) as an input. Membrane
  // (wrap) counts only change structurally, so they need no entries.
  cls->touched.assign(n * num_species_, {});
  for (std::uint32_t mi = 0; mi < cls->matches.size(); ++mi) {
    const match_desc& md = cls->matches[mi];
    const rule_plan& p = plans_[md.rule];
    for (const species_id s : p.host_reads)
      cls->touched[md.host * num_species_ + s].push_back(mi);
    if (md.child != kNone)
      for (const species_id s : p.child_reads)
        cls->touched[md.child * num_species_ + s].push_back(mi);
  }

  const shape_class* out = cls.get();
  bucket.push_back(std::move(cls));
  ++num_classes_;
  return out;
}

batch_engine::class_pool& batch_engine::pool_for(const shape_class* cls,
                                                 std::size_t min_cols) {
  auto& up = pools_[cls];
  if (up == nullptr) {
    up = std::make_unique<class_pool>();
    class_pool& P = *up;
    P.cls = cls;
    // Pools start narrow and double on demand (grow_pool): most shape
    // classes only ever host a handful of lanes, and a small stride keeps
    // the whole multi-pool working set cache-resident.
    std::size_t cap = std::min<std::size_t>(width(), 4);
    while (cap < std::min(min_cols, width())) cap *= 2;
    P.cap = cap;
    const std::size_t n = cls->nodes.size();
    const std::size_t nm = cls->matches.size();
    // Zero-filled strips: every column is defined from the start, so wide
    // sweeps over not-yet-resident columns read garbage, never poison.
    P.content.assign(n * num_species_ * P.cap, 0);
    P.wrap.assign(n * num_species_ * P.cap, 0);
    P.prop.assign(nm * P.cap, 0.0);
    P.block_sub.assign(n * P.cap, 0.0);
    P.total.assign(P.cap, 0.0);
    P.cell_of.assign(P.cap, 0);
    P.free_cols.resize(P.cap);
    for (std::size_t i = 0; i < P.cap; ++i)
      P.free_cols[i] = static_cast<std::uint32_t>(P.cap - 1 - i);
    P.mask_words = static_cast<std::uint32_t>((P.cap + 63) / 64);
    P.match_mask.assign(nm * P.mask_words, 0);
    P.block_mask.assign(n * P.mask_words, 0);
    P.match_round.assign(nm, 0);
    P.block_round.assign(n, 0);
    P.tr_cache.assign(nm, nullptr);
    P.hot_nodes = static_cast<std::uint32_t>(n);
  }
  return *up;
}

void batch_engine::grow_pool(class_pool& P) {
  const std::size_t oldcap = P.cap;
  util::expects(oldcap < width(), "class pool out of lane columns");
  const std::size_t newcap = std::min(width(), oldcap * 2);
  const std::size_t n = P.cls->nodes.size();
  const std::size_t nm = P.cls->matches.size();
  const auto restride = [&](auto& v, std::size_t rows, auto zero) {
    std::decay_t<decltype(v)> nv(rows * newcap, zero);
    for (std::size_t r = 0; r < rows; ++r)
      std::copy_n(v.data() + r * oldcap, oldcap, nv.data() + r * newcap);
    v = std::move(nv);
  };
  restride(P.content, n * num_species_, std::uint64_t{0});
  restride(P.wrap, n * num_species_, std::uint64_t{0});
  restride(P.prop, nm, 0.0);
  restride(P.block_sub, n, 0.0);
  P.total.resize(newcap, 0.0);
  P.cell_of.resize(newcap, 0);
  // Growth can land mid-round (a structural fire staging into this pool),
  // so the dirty masks must survive the re-stride word-for-word.
  const auto new_words = static_cast<std::uint32_t>((newcap + 63) / 64);
  if (new_words != P.mask_words) {
    const auto remask = [&](std::vector<std::uint64_t>& v, std::size_t rows) {
      std::vector<std::uint64_t> nv(rows * new_words, 0);
      for (std::size_t r = 0; r < rows; ++r)
        std::copy_n(v.data() + r * P.mask_words, P.mask_words,
                    nv.data() + r * new_words);
      v = std::move(nv);
    };
    remask(P.match_mask, nm);
    remask(P.block_mask, n);
    P.mask_words = new_words;
  }
  // New columns pushed high-to-low so allocation hands them out ascending.
  P.free_cols.reserve(P.free_cols.size() + (newcap - oldcap));
  for (std::size_t c = newcap; c-- > oldcap;)
    P.free_cols.push_back(static_cast<std::uint32_t>(c));
  P.cap = newcap;
}

std::uint32_t batch_engine::alloc_col(class_pool& P) {
  if (P.free_cols.empty()) grow_pool(P);
  const std::uint32_t col = P.free_cols.back();
  P.free_cols.pop_back();
  ++P.live;
  return col;
}

void batch_engine::free_col(class_pool& P, std::uint32_t col) {
  P.free_cols.push_back(col);
  --P.live;
}

void batch_engine::touch_pool(class_pool& P) {
  if (P.flush_round != round_) {
    P.flush_round = round_;
    flush_pools_.push_back(&P);
  }
}

void batch_engine::mark_block(class_pool& P, std::uint32_t b,
                              std::uint32_t word, std::uint64_t bit) {
  if (P.block_round[b] != round_) {
    P.block_round[b] = round_;
    P.dirty_b.push_back(b);
  }
  P.block_mask[std::size_t{b} * P.mask_words + word] |= bit;
}

void batch_engine::mark_match(class_pool& P, std::uint32_t mi,
                              std::uint32_t word, std::uint64_t bit) {
  if (P.match_round[mi] != round_) {
    P.match_round[mi] = round_;
    P.dirty_mi.push_back(mi);
  }
  P.match_mask[std::size_t{mi} * P.mask_words + word] |= bit;
  mark_block(P, P.cls->matches[mi].host, word, bit);
}

void batch_engine::mark_reads(class_pool& P, std::uint32_t node, species_id s,
                              std::uint32_t word, std::uint64_t bit) {
  for (const std::uint32_t mi :
       P.cls->touched[std::size_t{node} * num_species_ + s])
    mark_match(P, mi, word, bit);
}

bool batch_engine::note_fire(class_pool& P) {
  touch_pool(P);
  if (P.fires_round != round_) {
    P.fires_round = round_;
    P.fires_n = 0;
    P.flood = false;
  }
  // Flooding replaces per-fire marking with a blanket sweep of every match
  // row, so it only pays once the round's fires rival the pool's row count
  // — family layout pools carry rows for max_slots slots and must not be
  // swept whole for a handful of fires.
  if (P.flood ||
      ++P.fires_n >= std::max<std::size_t>(flood_min_, P.cls->matches.size())) {
    P.flood = true;
    return true;
  }
  return false;
}

void batch_engine::zero_col(class_pool& P, std::uint32_t col) {
  const std::size_t cap = P.cap;
  const std::size_t n = P.cls->nodes.size();
  const std::size_t nm = P.cls->matches.size();
  for (std::size_t r = 0; r < n * num_species_; ++r) {
    P.content[r * cap + col] = 0;
    P.wrap[r * cap + col] = 0;
  }
  for (std::size_t mi = 0; mi < nm; ++mi) P.prop[mi * cap + col] = 0.0;
  for (std::size_t b = 0; b < n; ++b) P.block_sub[b * cap + col] = 0.0;
}

double batch_engine::eval_match_dense(const rate_tape& T, const shape_class& C,
                                      std::uint32_t mi,
                                      const std::uint64_t* content,
                                      const std::uint64_t* wrap) const {
  const match_desc& md = C.matches[mi];
  const tape_program& pg = T.program(md.rule);
  const std::uint64_t* host_c = content + std::size_t{md.host} * num_species_;
  const std::uint64_t* cw = nullptr;
  const std::uint64_t* cc = nullptr;
  if (md.child != kNone) {
    cw = wrap + std::size_t{md.child} * num_species_;
    cc = content + std::size_t{md.child} * num_species_;
  }
  return T.eval(pg, host_c, cw, cc, 1);
}

double batch_engine::eval_match_pool(const class_pool& P, std::uint32_t mi,
                                     std::uint32_t col) const {
  const shape_class& C = *P.cls;
  const match_desc& md = C.matches[mi];
  const rate_tape& T = *tape_for_col(P, col);
  const tape_program& pg = T.program(md.rule);
  const std::size_t cap = P.cap;
  const std::uint64_t* host_c =
      P.content.data() + std::size_t{md.host} * num_species_ * cap + col;
  const std::uint64_t* cw = nullptr;
  const std::uint64_t* cc = nullptr;
  if (md.child != kNone) {
    cw = P.wrap.data() + std::size_t{md.child} * num_species_ * cap + col;
    cc = P.content.data() + std::size_t{md.child} * num_species_ * cap + col;
  }
  return T.eval(pg, host_c, cw, cc, cap);
}

const double* batch_engine::gather_cell_a(const class_pool& P,
                                          std::uint32_t rule, tape_head head) {
  // Only the mass-action head carries a per-cell operand: overlays cannot
  // patch MM/Hill constants, so those programs are identical across cells
  // and the shared pg parameter block is right for every column. Free or
  // stale columns gather a defined (last resident cell's) constant that is
  // never read for decisions — the usual strip convention.
  if (!multi_cell_ || head != tape_head::mass_action) return nullptr;
  a_scratch_.resize(P.cap);
  const double* base = cell_a_.data() + rule;
  for (std::size_t c = 0; c < P.cap; ++c)
    a_scratch_[c] = base[std::size_t{P.cell_of[c]} * num_rules_];
  return a_scratch_.data();
}

double batch_engine::fold_total_col(const class_pool& P, std::uint32_t col,
                                    std::uint32_t nb) const {
  // Canonical pre-order fold over the block subtotals (the per-column
  // accumulation order of the wide totals kernel). Truncating at the
  // lane's live node count only drops trailing +0.0 terms.
  const std::size_t cap = P.cap;
  double total = 0.0;
  for (std::size_t b = 0; b < nb; ++b) total += P.block_sub[b * cap + col];
  return total;
}

std::uint32_t batch_engine::live_nodes(std::size_t lane) const {
  const class_pool& P = *lane_pool_[lane];
  return P.fam != nullptr
             ? P.fam->skeleton_n + lane_slots_[lane]
             : static_cast<std::uint32_t>(P.cls->nodes.size());
}

void batch_engine::resum_block_col(class_pool& P, std::uint32_t b,
                                   std::uint32_t col) {
  // Canonical left-to-right fold over the block's matches; infeasible
  // entries hold +0.0 and cannot perturb the sum, so the value is
  // bit-identical to the scalar engine's positive-matches-only fold.
  const std::uint32_t first = P.cls->block_first[b];
  const std::uint32_t count = P.cls->block_count[b];
  const std::size_t cap = P.cap;
  double sub = 0.0;
  for (std::uint32_t mi = first; mi < first + count; ++mi)
    sub += P.prop[std::size_t{mi} * cap + col];
  P.block_sub[std::size_t{b} * cap + col] = sub;
}

void batch_engine::flush_pool(class_pool& P) {
  const shape_class& C = *P.cls;
  const std::size_t cap = P.cap;
  const std::uint32_t W = P.mask_words;
  if (P.flood) {
    // Flood flush: enough lanes fired this round that the pool stopped
    // tracking per-row masks — re-evaluate EVERY match row and refold
    // EVERY block wide. Purity makes the blanket sweep exact: clean (or
    // stale, or free) columns just get their bits rewritten.
    const std::size_t nm = C.matches.size();
    for (std::uint32_t mi = 0; mi < nm; ++mi) {
      const match_desc& md = C.matches[mi];
      const tape_program& pg = tape_->program(md.rule);
      const std::uint64_t* host_c =
          P.content.data() + std::size_t{md.host} * num_species_ * cap;
      const std::uint64_t* cw = nullptr;
      const std::uint64_t* cc = nullptr;
      if (md.child != kNone) {
        cw = P.wrap.data() + std::size_t{md.child} * num_species_ * cap;
        cc = P.content.data() + std::size_t{md.child} * num_species_ * cap;
      }
      kernels::tape_eval_wide(*tape_, pg, host_c, cw, cc, cap,
                              P.prop.data() + std::size_t{mi} * cap,
                              wide_scratch_,
                              gather_cell_a(P, md.rule, pg.head));
    }
    const std::size_t n = C.nodes.size();
    for (std::uint32_t b = 0; b < n; ++b)
      kernels::fold_rows_wide(P.prop.data(), C.block_first[b],
                              C.block_count[b], cap,
                              P.block_sub.data() + std::size_t{b} * cap);
    // Rows marked before the flood threshold tripped still hold mask bits.
    for (const std::uint32_t mi : P.dirty_mi) {
      std::uint64_t* mask = P.match_mask.data() + std::size_t{mi} * W;
      for (std::uint32_t w = 0; w < W; ++w) mask[w] = 0;
    }
    for (const std::uint32_t b : P.dirty_b) {
      std::uint64_t* mask = P.block_mask.data() + std::size_t{b} * W;
      for (std::uint32_t w = 0; w < W; ++w) mask[w] = 0;
    }
    P.dirty_mi.clear();
    P.dirty_b.clear();
    P.flood = false;
    return;
  }
  const auto popcount = [&](const std::uint64_t* m) {
    std::size_t n = 0;
    for (std::uint32_t w = 0; w < W; ++w) n += std::popcount(m[w]);
    return n;
  };
  // Re-evaluations first (folds read them). A row enough lanes dirtied is
  // swept wide across ALL columns: propensities are pure functions of the
  // counts they read, so re-evaluating a clean (or stale) column rewrites
  // its bits unchanged — that redundancy is what buys contiguous
  // lane-innermost arithmetic. Sparse rows walk their set bits scalar.
  for (const std::uint32_t mi : P.dirty_mi) {
    std::uint64_t* mask = P.match_mask.data() + std::size_t{mi} * W;
    if (popcount(mask) >= wide_eval_min_) {
      const match_desc& md = C.matches[mi];
      const tape_program& pg = tape_->program(md.rule);
      const std::uint64_t* host_c =
          P.content.data() + std::size_t{md.host} * num_species_ * cap;
      const std::uint64_t* cw = nullptr;
      const std::uint64_t* cc = nullptr;
      if (md.child != kNone) {
        cw = P.wrap.data() + std::size_t{md.child} * num_species_ * cap;
        cc = P.content.data() + std::size_t{md.child} * num_species_ * cap;
      }
      kernels::tape_eval_wide(*tape_, pg, host_c, cw, cc, cap,
                              P.prop.data() + std::size_t{mi} * cap,
                              wide_scratch_,
                              gather_cell_a(P, md.rule, pg.head));
    } else {
      for (std::uint32_t w = 0; w < W; ++w) {
        std::uint64_t bits = mask[w];
        while (bits != 0) {
          const auto col =
              static_cast<std::uint32_t>(w * 64 + std::countr_zero(bits));
          bits &= bits - 1;
          P.prop[std::size_t{mi} * cap + col] = eval_match_pool(P, mi, col);
        }
      }
    }
    for (std::uint32_t w = 0; w < W; ++w) mask[w] = 0;
  }
  for (const std::uint32_t b : P.dirty_b) {
    std::uint64_t* mask = P.block_mask.data() + std::size_t{b} * W;
    if (popcount(mask) >= wide_fold_min_) {
      kernels::fold_rows_wide(P.prop.data(), C.block_first[b],
                              C.block_count[b], cap,
                              P.block_sub.data() + std::size_t{b} * cap);
    } else {
      for (std::uint32_t w = 0; w < W; ++w) {
        std::uint64_t bits = mask[w];
        while (bits != 0) {
          const auto col =
              static_cast<std::uint32_t>(w * 64 + std::countr_zero(bits));
          bits &= bits - 1;
          resum_block_col(P, b, col);
        }
      }
    }
    for (std::uint32_t w = 0; w < W; ++w) mask[w] = 0;
  }
  P.dirty_mi.clear();
  P.dirty_b.clear();
}

void batch_engine::record_sample(std::size_t lane, double at,
                                 std::vector<trajectory_sample>& out) {
  const class_pool& P = *lane_pool_[lane];
  const std::uint32_t col = lane_col_[lane];
  const shape_class& C = *P.cls;
  const std::size_t cap = P.cap;
  const auto& plans = cm_->observable_plans();
  obs_scratch_.resize(plans.size());
  for (std::uint64_t& v : obs_scratch_) v = 0;
  // Same exact-integer accumulation as compiled_model::observe_all, over
  // the lane's strip column instead of a tree walk. Family layouts hold
  // max_slots node rows but only skeleton + K are this lane's term; the
  // reserve rows are exactly zero, so skipping them changes no sum.
  const std::size_t n = P.fam != nullptr
                            ? P.fam->skeleton_n + lane_slots_[lane]
                            : C.nodes.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t* c =
        P.content.data() + i * num_species_ * cap + col;
    const std::uint64_t* w = P.wrap.data() + i * num_species_ * cap + col;
    for (std::size_t o = 0; o < plans.size(); ++o) {
      const auto& p = plans[o];
      if (!p.scoped) {
        obs_scratch_[o] += c[std::size_t{p.sp} * cap] + w[std::size_t{p.sp} * cap];
      } else if (C.nodes[i].type == p.scope) {
        obs_scratch_[o] += c[std::size_t{p.sp} * cap];
      }
    }
  }
  trajectory_sample s;
  s.time = at;
  s.values.reserve(plans.size());
  for (const std::uint64_t v : obs_scratch_)
    s.values.push_back(static_cast<double>(v));
  out.push_back(std::move(s));
}

void batch_engine::emit_frozen_tail(std::size_t lane, double t_end,
                                    double sample_period,
                                    std::vector<trajectory_sample>& out) {
  // No reaction can ever fire again: emit the frozen tail straight to
  // t_end (the scalar backends' stall fast-forward).
  const double horizon = t_end + sample_tolerance(t_end, sample_period);
  while (sample_time(next_sample_k_[lane], sample_period) <= horizon) {
    record_sample(lane, sample_time(next_sample_k_[lane], sample_period), out);
    ++next_sample_k_[lane];
  }
  time_[lane] = t_end;
}

void batch_engine::apply_fast(class_pool& P, std::uint32_t col,
                              const match_desc& md, const rule_plan& rp) {
  const std::size_t cap = P.cap;
  std::uint64_t* content = P.content.data();
  const auto cell = [&](std::uint32_t node, species_id sp) -> std::uint64_t& {
    return content[(std::size_t{node} * num_species_ + sp) * cap + col];
  };
  for (const sp_delta& d : rp.host_delta) {
    std::uint64_t& c = cell(md.host, d.sp);
    c = static_cast<std::uint64_t>(static_cast<std::int64_t>(c) + d.d);
  }
  if (rp.has_child) {
    for (const sp_delta& d : rp.child_delta) {
      std::uint64_t& c = cell(md.child, d.sp);
      c = static_cast<std::uint64_t>(static_cast<std::int64_t>(c) + d.d);
    }
  }

  // Per-match dirty granularity, deferred: OR the column's bit into each
  // affected row's mask (idempotent — no per-fire dedupe needed) and
  // enroll the row in the dirty list once per round; the end-of-round
  // flush popcounts each mask to pick wide sweep vs per-bit scalar. Once
  // enough fires hit this pool in one round, marking stops (flood): the
  // flush will blanket-sweep every row wide anyway.
  if (note_fire(P)) return;
  const std::uint32_t word = col / 64;
  const std::uint64_t bit = 1ULL << (col & 63);
  for (const sp_delta& d : rp.host_delta) mark_reads(P, md.host, d.sp, word, bit);
  if (rp.has_child)
    for (const sp_delta& d : rp.child_delta)
      mark_reads(P, md.child, d.sp, word, bit);
}

const batch_engine::transition& batch_engine::find_transition(
    const shape_class& C, const match_desc& md, const rule_plan& rp) {
  const auto n = static_cast<std::uint32_t>(C.nodes.size());
  const std::uint32_t host = md.host;

  // Transition lookup: the outcome depends only on (class, rule, host,
  // bound child) — pack the index triple into one word, bucket by a hash
  // of it with the class pointer, disambiguate on the full key. The 21-bit
  // index fields bound the packing; fail loudly rather than alias keys on
  // a pathological 2M-compartment tree.
  util::expects(md.rule < (1u << 21) && host < (1u << 21) &&
                    (md.child == kNone || md.child < (1u << 21) - 1),
                "transition key fields exceed 21 bits");
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(md.rule) << 42) |
      (static_cast<std::uint64_t>(host) << 21) |
      (md.child == kNone ? 0 : static_cast<std::uint64_t>(md.child) + 1);
  const std::uint64_t h =
      (reinterpret_cast<std::uintptr_t>(&C) >> 4) * 0x9e3779b97f4a7c15ULL ^
      packed * 0x100000001b3ULL;
  auto& bucket = transitions_[h];
  for (auto& [key, tr] : bucket)
    if (key.first == &C && key.second == packed) return *tr;

  // ---- miss: build the edited topology once and cache it --------------
  // Edited child list of the host (old ids; creation k gets id n+k),
  // replaying rule::apply's order: creations append first, then the bound
  // child is dropped (its original position is still valid) and dissolve
  // appends the grandchildren.
  host_kids_scratch_.assign(C.children[host].begin(), C.children[host].end());
  for (std::uint32_t k = 0; k < rp.creations.size(); ++k)
    host_kids_scratch_.push_back(n + k);
  if (rp.has_child && rp.fate != child_fate::keep) {
    host_kids_scratch_.erase(host_kids_scratch_.begin() + md.child_pos);
    if (rp.fate == child_fate::dissolve)
      for (const std::uint32_t g : C.children[md.child])
        host_kids_scratch_.push_back(g);
  }

  // New pre-order topology + origin map (removed subtrees unreachable).
  new_nodes_.clear();
  origin_.clear();
  const auto walk = [&](auto&& self, std::uint32_t old_id,
                        std::int32_t parent) -> std::uint32_t {
    const auto idx = static_cast<std::uint32_t>(new_nodes_.size());
    const bool created = old_id >= n;
    new_nodes_.push_back(
        {created ? rp.creations[old_id - n].type : C.nodes[old_id].type,
         parent});
    if (new_children_.size() <= idx) new_children_.emplace_back();
    new_children_[idx].clear();
    origin_.push_back(old_id);
    if (created) return idx;  // comp_products carry no nested compartments
    const auto& kids_of =
        old_id == host ? host_kids_scratch_ : C.children[old_id];
    for (const std::uint32_t c : kids_of) {
      const std::uint32_t ci = self(self, c, static_cast<std::int32_t>(idx));
      new_children_[idx].push_back(ci);
    }
    return idx;
  };
  walk(walk, 0, -1);
  const auto n2 = static_cast<std::uint32_t>(new_nodes_.size());
  new_children_.resize(n2);

  transition tr;
  tr.to = intern_class(new_nodes_, new_children_);
  tr.origin = origin_;
  for (std::uint32_t i = 0; i < n2; ++i) {
    if (origin_[i] == host) tr.new_host = i;
    if (rp.has_child && rp.fate == child_fate::keep && origin_[i] == md.child)
      tr.new_bound = i;
  }
  util::ensures(tr.new_host != kNone, "structural rewrite lost the host");
  // Boxed so the per-pool tr_cache pointers survive bucket growth.
  bucket.emplace_back(std::make_pair(&C, packed),
                      std::make_unique<transition>(std::move(tr)));
  return *bucket.back().second;
}

batch_engine::family* batch_engine::family_entry_for(const shape_class* C) {
  if (const auto it = entry_cache_.find(C); it != entry_cache_.end())
    return it->second;
  // Trailing slot run: the maximal pre-order suffix of childless nodes of
  // one type hanging off one skeleton host. Such classes differ from each
  // other only in the run length K, which is what a family collapses.
  const auto n = static_cast<std::uint32_t>(C->nodes.size());
  const comp_type_id T = C->nodes[n - 1].type;
  const std::int32_t h = C->nodes[n - 1].parent;
  std::uint32_t run = 0;
  if (h >= 0) {
    while (run < n) {
      const std::uint32_t i = n - 1 - run;
      if (C->nodes[i].type != T || C->nodes[i].parent != h ||
          !C->children[i].empty())
        break;
      ++run;
    }
  }
  const std::uint32_t skeleton_n = n - run;
  if (run == 0 || static_cast<std::uint32_t>(h) >= skeleton_n) {
    entry_cache_.emplace(C, nullptr);
    return nullptr;
  }

  // Eligibility: every slot-involving propensity must evaluate to exactly
  // +0.0 when the slot's counts are all zero — that is what lets absent
  // slots sit as zero rows that perturb neither folds nor selection scans
  // (and lets wide sweeps re-evaluate them to the same zero). Checked on
  // the compiled tape: a slot-hosted rule needs a host-content factor or a
  // zero-at-zero driver head; a slot-binding match needs a wrap/content
  // requirement or a zero-at-zero driver read from the child.
  const comp_type_id host_type =
      C->nodes[static_cast<std::uint32_t>(h)].type;
  const auto zero_at_zero_driver = [](const tape_program& pg) {
    return pg.has_driver && (pg.head == tape_head::michaelis_menten ||
                             pg.head == tape_head::hill_activation);
  };
  bool ok = true;
  for (const std::uint32_t j : cm_->rules_for_type(T)) {
    const rule_plan& p = plans_[j];
    if (p.has_child) continue;  // slots are leaves: no such match exists
    const tape_program& pg = tape_->program(j);
    if (pg.n_host == 0 && !(zero_at_zero_driver(pg) && !pg.driver_in_child)) {
      ok = false;
      break;
    }
  }
  if (ok) {
    for (const std::uint32_t j : cm_->rules_for_type(host_type)) {
      const rule_plan& p = plans_[j];
      if (!p.has_child || p.child_type != T) continue;
      const tape_program& pg = tape_->program(j);
      if (pg.n_wrap + pg.n_child == 0 &&
          !(zero_at_zero_driver(pg) && pg.driver_in_child)) {
        ok = false;
        break;
      }
    }
  }
  if (!ok) {
    entry_cache_.emplace(C, nullptr);
    return nullptr;
  }

  // A wide-enough existing family over the same skeleton and slot
  // signature, else build one with doubling headroom.
  family* best = nullptr;
  for (const auto& f : families_) {
    if (f->slot_type != T || f->slot_parent != static_cast<std::uint32_t>(h) ||
        f->skeleton_n != skeleton_n || f->max_slots < run)
      continue;
    if (!std::equal(f->skel_key.begin(), f->skel_key.end(), C->key.begin()))
      continue;
    if (best == nullptr || f->max_slots > best->max_slots) best = f.get();
  }
  if (best == nullptr) {
    auto fam = std::make_unique<family>();
    fam->skeleton_n = skeleton_n;
    fam->slot_parent = static_cast<std::uint32_t>(h);
    fam->slot_type = T;
    fam->max_slots = std::max<std::uint32_t>(4, 2 * run);
    fam->skel_key.assign(C->key.begin(), C->key.begin() + skeleton_n);
    std::vector<shape_class::node> nodes(C->nodes.begin(),
                                         C->nodes.begin() + skeleton_n);
    std::vector<std::vector<std::uint32_t>> kidv(skeleton_n);
    for (std::uint32_t i = 0; i < skeleton_n; ++i)
      for (const std::uint32_t k : C->children[i])
        if (k < skeleton_n) kidv[i].push_back(k);
    for (std::uint32_t s = 0; s < fam->max_slots; ++s) {
      const auto id = static_cast<std::uint32_t>(nodes.size());
      nodes.push_back({T, h});
      kidv[fam->slot_parent].push_back(id);
    }
    kidv.resize(std::size_t{skeleton_n} + fam->max_slots);
    family* F = fam.get();
    F->fcls = intern_class(nodes, kidv);
    class_pool& FP = pool_for(F->fcls);
    F->pool = &FP;
    util::ensures(FP.fam == nullptr, "family layout pool already claimed");
    FP.fam = F;
    // Lanes that reached the layout class generically before this family
    // existed are, by definition, full-width members.
    if (FP.live == 0) FP.hot_nodes = skeleton_n;  // ratchets up on entry
    for (std::size_t l = 0; l < width(); ++l)
      if (lane_pool_[l] == &FP) lane_slots_[l] = F->max_slots;
    F->host_rows_of_slot.assign(F->max_slots, {});
    const shape_class& FC = *F->fcls;
    const std::uint32_t bf = FC.block_first[F->slot_parent];
    for (std::uint32_t k = 0; k < FC.block_count[F->slot_parent]; ++k) {
      const match_desc& m = FC.matches[bf + k];
      if (m.child != kNone && m.child >= skeleton_n)
        F->host_rows_of_slot[m.child - skeleton_n].push_back(bf + k);
    }
    families_.push_back(std::move(fam));
    best = F;
  }
  entry_cache_.emplace(C, best);
  return best;
}

const batch_engine::shape_class* batch_engine::member_class(const family& F,
                                                            std::uint32_t K) {
  const shape_class& FC = *F.fcls;
  const std::uint32_t n = F.skeleton_n + K;
  std::vector<shape_class::node> nodes(FC.nodes.begin(), FC.nodes.begin() + n);
  std::vector<std::vector<std::uint32_t>> kidv(n);
  for (std::uint32_t i = 0; i < n; ++i)
    for (const std::uint32_t k : FC.children[i])
      if (k < n) kidv[i].push_back(k);
  return intern_class(nodes, kidv);
}

const std::vector<std::uint32_t>& batch_engine::family_rowmap(family& F,
                                                              std::uint32_t K) {
  if (const auto it = F.rowmaps.find(K); it != F.rowmaps.end())
    return it->second;
  // Block-by-block greedy subsequence alignment on (rule, child): member
  // blocks carry the same per-rule groups as the layout blocks with the
  // missing slots' entries absent, so every member row has exactly one
  // counterpart and relative order is preserved (the bit-exactness
  // precondition for interspersed-zero folds).
  const shape_class& CA = *member_class(F, K);
  const shape_class& FC = *F.fcls;
  std::vector<std::uint32_t> map(CA.matches.size(), kNone);
  const auto nb = static_cast<std::uint32_t>(CA.nodes.size());
  for (std::uint32_t b = 0; b < nb; ++b) {
    std::uint32_t cur = FC.block_first[b];
    const std::uint32_t end = cur + FC.block_count[b];
    const std::uint32_t first = CA.block_first[b];
    for (std::uint32_t mi = first; mi < first + CA.block_count[b]; ++mi) {
      const match_desc& m = CA.matches[mi];
      while (cur < end && (FC.matches[cur].rule != m.rule ||
                           FC.matches[cur].child != m.child))
        ++cur;
      util::ensures(cur < end, "family member rows not a subsequence");
      map[mi] = cur++;
    }
  }
  return F.rowmaps.emplace(K, std::move(map)).first->second;
}

void batch_engine::migrate_to_family(std::size_t lane, family& F) {
  // Pure re-layout: scatter the lane's column into the family pool at the
  // family's row positions, zeros everywhere the member has no row. Every
  // copied cell keeps its bits, so totals, folds, and selection reproduce
  // the member layout's arithmetic exactly.
  class_pool& P = *lane_pool_[lane];
  const std::uint32_t colA = lane_col_[lane];
  const shape_class& CA = *P.cls;
  const auto K = static_cast<std::uint32_t>(CA.nodes.size()) - F.skeleton_n;
  const std::vector<std::uint32_t>& map = family_rowmap(F, K);
  class_pool& FP = *F.pool;
  const std::uint32_t colB = alloc_col(FP);
  FP.cell_of[colB] = lane_cell_[lane];
  zero_col(FP, colB);  // recycled columns must honor the zero invariant
  const std::size_t capA = P.cap;
  const std::size_t capB = FP.cap;
  const std::size_t n = CA.nodes.size();
  for (std::size_t r = 0; r < n * num_species_; ++r) {
    FP.content[r * capB + colB] = P.content[r * capA + colA];
    FP.wrap[r * capB + colB] = P.wrap[r * capA + colA];
  }
  for (std::size_t mi = 0; mi < CA.matches.size(); ++mi)
    FP.prop[std::size_t{map[mi]} * capB + colB] = P.prop[mi * capA + colA];
  for (std::size_t b = 0; b < n; ++b)
    FP.block_sub[b * capB + colB] = P.block_sub[b * capA + colA];
  free_col(P, colA);
  lane_pool_[lane] = &FP;
  lane_col_[lane] = colB;
  lane_slots_[lane] = K;
  FP.hot_nodes = std::max(FP.hot_nodes, F.skeleton_n + K);
}

void batch_engine::family_append(std::size_t lane, const match_desc& md,
                                 const rule_plan& rp) {
  class_pool& P = *lane_pool_[lane];
  family& F = *P.fam;
  const std::uint32_t col = lane_col_[lane];
  const std::size_t cap = P.cap;
  const std::uint32_t K = lane_slots_[lane];
  const std::uint32_t slot_node = F.skeleton_n + K;
  const auto cell = [&](std::uint32_t node, species_id sp) -> std::uint64_t& {
    return P.content[(std::size_t{node} * num_species_ + sp) * cap + col];
  };
  // The slot's rows are exactly zero (family invariant): write the
  // creation's counts straight in, then apply the host stoichiometry.
  for (const sp_count& rc : rp.creations[0].content)
    cell(slot_node, rc.sp) = rc.n;
  for (const sp_count& rc : rp.creations[0].wrap)
    P.wrap[(std::size_t{slot_node} * num_species_ + rc.sp) * cap + col] = rc.n;
  for (const sp_delta& d : rp.host_delta) {
    std::uint64_t& c = cell(md.host, d.sp);
    c = static_cast<std::uint64_t>(static_cast<std::int64_t>(c) + d.d);
  }
  ++lane_slots_[lane];
  P.hot_nodes = std::max(P.hot_nodes, slot_node + 1);

  if (note_fire(P)) return;  // the blanket flush re-evaluates every row
  const std::uint32_t word = col / 64;
  const std::uint64_t bit = 1ULL << (col & 63);
  for (const sp_delta& d : rp.host_delta)
    mark_reads(P, md.host, d.sp, word, bit);
  // Newly live rows need explicit marks: wrap requirements are not in the
  // touched index (membrane counts only change structurally).
  for (const std::uint32_t mi : F.host_rows_of_slot[K])
    mark_match(P, mi, word, bit);
  const std::uint32_t bf = F.fcls->block_first[slot_node];
  for (std::uint32_t k = 0; k < F.fcls->block_count[slot_node]; ++k)
    mark_match(P, bf + k, word, bit);
  mark_block(P, md.host, word, bit);
}

void batch_engine::family_dissolve(std::size_t lane, const match_desc& md,
                                   const rule_plan& rp) {
  class_pool& P = *lane_pool_[lane];
  family& F = *P.fam;
  const std::uint32_t col = lane_col_[lane];
  const std::size_t cap = P.cap;
  const std::uint32_t K = lane_slots_[lane];
  const std::uint32_t j = md.child - F.skeleton_n;  // 0-based dying slot
  util::expects(j < K, "family dissolve on an absent slot");
  const auto crow = [&](std::uint32_t node) {
    return P.content.data() + std::size_t{node} * num_species_ * cap + col;
  };
  const auto wrow = [&](std::uint32_t node) {
    return P.wrap.data() + std::size_t{node} * num_species_ * cap + col;
  };
  // Host edit first (reads the dying slot's rows before they shift):
  // stoichiometry, then — dissolve only — the slot's content and membrane
  // merge in, with the changed-species set tracked for dirty marking.
  changed_host_.assign(num_species_, 0);
  for (const sp_delta& d : rp.host_delta) changed_host_[d.sp] = 1;
  std::uint64_t* host_c = crow(md.host);
  const auto bump = [&](const sp_delta& d) {
    std::uint64_t& c = host_c[std::size_t{d.sp} * cap];
    c = static_cast<std::uint64_t>(static_cast<std::int64_t>(c) + d.d);
  };
  for (const sp_delta& d : rp.host_delta) bump(d);
  if (rp.fate == child_fate::dissolve) {
    const std::uint64_t* cc = crow(md.child);
    const std::uint64_t* cw = wrow(md.child);
    for (species_id s = 0; s < num_species_; ++s) {
      const std::uint64_t add =
          cc[std::size_t{s} * cap] + cw[std::size_t{s} * cap];
      if (add != 0) {
        host_c[std::size_t{s} * cap] += add;
        changed_host_[s] = 1;
      }
    }
    for (const sp_delta& d : rp.child_delta) {
      bump(d);
      changed_host_[d.sp] = 1;
    }
  }
  // Shift slots j+1..K-1 down one — node rows, host-block binding rows
  // (group-aligned, same rule), the slots' own block rows and subtotals.
  // All bit-copies: each value is a pure function of counts that move with
  // it; rows that also read changed host counts get re-marked below.
  const shape_class& FC = *F.fcls;
  for (std::uint32_t s = j; s + 1 < K; ++s) {
    const std::uint32_t a = F.skeleton_n + s;
    const std::uint32_t b2 = a + 1;
    std::uint64_t* ca = crow(a);
    const std::uint64_t* cb = crow(b2);
    std::uint64_t* wa = wrow(a);
    const std::uint64_t* wb = wrow(b2);
    for (species_id sp = 0; sp < num_species_; ++sp) {
      ca[std::size_t{sp} * cap] = cb[std::size_t{sp} * cap];
      wa[std::size_t{sp} * cap] = wb[std::size_t{sp} * cap];
    }
    const auto& ra = F.host_rows_of_slot[s];
    const auto& rb = F.host_rows_of_slot[s + 1];
    for (std::size_t g = 0; g < ra.size(); ++g)
      P.prop[std::size_t{ra[g]} * cap + col] =
          P.prop[std::size_t{rb[g]} * cap + col];
    const std::uint32_t bfa = FC.block_first[a];
    const std::uint32_t bfb = FC.block_first[b2];
    for (std::uint32_t t = 0; t < FC.block_count[a]; ++t)
      P.prop[std::size_t{bfa + t} * cap + col] =
          P.prop[std::size_t{bfb + t} * cap + col];
    P.block_sub[std::size_t{a} * cap + col] =
        P.block_sub[std::size_t{b2} * cap + col];
  }
  {  // zero the vacated last slot — restores the rows-above-K invariant
    const std::uint32_t z = F.skeleton_n + K - 1;
    std::uint64_t* cz = crow(z);
    std::uint64_t* wz = wrow(z);
    for (species_id sp = 0; sp < num_species_; ++sp) {
      cz[std::size_t{sp} * cap] = 0;
      wz[std::size_t{sp} * cap] = 0;
    }
    for (const std::uint32_t mi : F.host_rows_of_slot[K - 1])
      P.prop[std::size_t{mi} * cap + col] = 0.0;
    const std::uint32_t bfz = FC.block_first[z];
    for (std::uint32_t t = 0; t < FC.block_count[z]; ++t)
      P.prop[std::size_t{bfz + t} * cap + col] = 0.0;
    P.block_sub[std::size_t{z} * cap + col] = 0.0;
  }
  --lane_slots_[lane];

  if (note_fire(P)) return;
  const std::uint32_t word = col / 64;
  const std::uint64_t bit = 1ULL << (col & 63);
  for (species_id s = 0; s < num_species_; ++s)
    if (changed_host_[s] != 0) mark_reads(P, md.host, s, word, bit);
  // The host block's fold changed even when no host count did (a binding
  // row left it): always refold.
  mark_block(P, md.host, word, bit);
}

void batch_engine::apply_structural(std::size_t lane, const match_desc& md,
                                    const rule_plan& rp) {
  class_pool& P = *lane_pool_[lane];
  if (P.fam != nullptr) {
    family& F = *P.fam;
    const std::uint32_t K = lane_slots_[lane];
    if (!rp.has_child && rp.creations.size() == 1 &&
        rp.creations[0].type == F.slot_type && md.host == F.slot_parent &&
        K < F.max_slots) {
      family_append(lane, md, rp);
      return;
    }
    if (rp.has_child && rp.creations.empty() &&
        rp.fate != child_fate::keep && md.child >= F.skeleton_n) {
      family_dissolve(lane, md, rp);
      return;
    }
    // Anything else — including an append at K == max_slots — leaves the
    // family through the generic path over the lane's member class. If the
    // result re-qualifies (overflow lands in a wider family), the generic
    // commit tail migrates the lane right back in.
    const shape_class* CA = member_class(F, K);
    apply_generic(lane, *CA, md, rp, family_rowmap(F, K).data());
    return;
  }
  apply_generic(lane, *P.cls, md, rp, nullptr);
}

void batch_engine::apply_generic(std::size_t lane, const shape_class& C,
                                 const match_desc& md, const rule_plan& rp,
                                 const std::uint32_t* prop_rowmap) {
  // Structural rewrites only edit the HOST's child list (creations append;
  // dissolve/remove drop the bound child, dissolve reparents its children
  // to the host's tail) plus the host/bound-child contents. Everything
  // else keeps its subtree, its counts, and therefore — propensities being
  // pure functions of the counts they read — its match values. The
  // topology outcome comes from the transition cache; per fire we stage
  // the lane's next column DENSE (stride 1) in engine scratch — counts and
  // match values carried by origin from the old strip column, only matches
  // whose inputs changed re-evaluated — then commit it into the target
  // class's pool (a fresh column, fully overwritten). Steady-state
  // structural churn allocates only when a never-seen tree shape (or
  // transition) must be compiled.
  class_pool& P = *lane_pool_[lane];
  const std::uint32_t colA = lane_col_[lane];
  const auto n = static_cast<std::uint32_t>(C.nodes.size());
  const std::uint32_t host = md.host;

  // Per-pool transition cache: mi -> transition, filled on first fire.
  // Transitions are boxed (stable addresses), so the raw pointer is safe.
  // Only valid when C IS the pool's class: a family lane's outcome depends
  // on its member class, which varies per lane within the pool.
  const transition* trp = nullptr;
  if (prop_rowmap == nullptr) {
    const auto mi_self = static_cast<std::uint32_t>(&md - C.matches.data());
    trp = P.tr_cache[mi_self];
    if (trp == nullptr) {
      trp = &find_transition(C, md, rp);
      P.tr_cache[mi_self] = trp;
    }
  } else {
    trp = &find_transition(C, md, rp);
  }
  const transition& tr = *trp;
  const shape_class* C2 = tr.to;
  const std::vector<std::uint32_t>& origin = tr.origin;
  const auto n2 = static_cast<std::uint32_t>(C2->nodes.size());
  const std::uint32_t new_host = tr.new_host;
  const std::uint32_t new_bound = tr.new_bound;

  // ---- staging target: the next column is staged exactly once ----
  // Direct mode writes straight into the target pool's freshly allocated
  // column (allocated while colA is still live, so they never alias) —
  // one strided pass instead of dense staging plus a scattered commit.
  // The dense-scratch path remains only for the rare same-class rewrite
  // from a full-width pool, where the lane must reuse its own column. Both
  // paths address cells as base[row * st]: st = cap for a pool column,
  // st = 1 for the dense scratch. NOTE: alloc_col can GROW P2 (double its
  // cap and re-stride its strips) — when P2 is P, every cached P pointer
  // or stride must be read after this block, never before.
  class_pool& P2 = pool_for(C2);
  const bool direct =
      (&P2 != &P) || !P2.free_cols.empty() || P2.cap < width();
  std::uint32_t colB = kNone;
  std::size_t st = 1;
  std::uint64_t* tc = nullptr;
  std::uint64_t* tw = nullptr;
  double* tp = nullptr;
  double* ts = nullptr;
  if (direct) {
    colB = alloc_col(P2);
    P2.cell_of[colB] = lane_cell_[lane];
    st = P2.cap;
    tc = P2.content.data() + colB;
    tw = P2.wrap.data() + colB;
    tp = P2.prop.data() + colB;
    ts = P2.block_sub.data() + colB;
  } else {
    new_content_.resize(std::size_t{n2} * num_species_);
    new_wrap_.resize(std::size_t{n2} * num_species_);
    new_prop_.resize(C2->matches.size());
    new_block_sub_.resize(n2);
    tc = new_content_.data();
    tw = new_wrap_.data();
    tp = new_prop_.data();
    ts = new_block_sub_.data();
  }

  // Old-column accessors: stride read AFTER any same-pool growth above.
  const std::size_t capA = P.cap;
  const auto old_cell = [&](std::uint32_t node, species_id s) {
    return P.content[(std::size_t{node} * num_species_ + s) * capA + colA];
  };
  const auto old_wrap_cell = [&](std::uint32_t node, species_id s) {
    return P.wrap[(std::size_t{node} * num_species_ + s) * capA + colA];
  };
  const auto old_prop = [&](std::uint32_t mi) {
    const std::uint32_t row = prop_rowmap != nullptr ? prop_rowmap[mi] : mi;
    return P.prop[std::size_t{row} * capA + colA];
  };

  // ---- counts, carried by origin then edited ----
  for (std::uint32_t i = 0; i < n2; ++i) {
    const std::uint32_t o = origin[i];
    std::uint64_t* c = tc + std::size_t{i} * num_species_ * st;
    std::uint64_t* w = tw + std::size_t{i} * num_species_ * st;
    if (o >= n) {
      for (species_id s = 0; s < num_species_; ++s) c[std::size_t{s} * st] = 0;
      for (species_id s = 0; s < num_species_; ++s) w[std::size_t{s} * st] = 0;
      for (const sp_count& rc : rp.creations[o - n].content)
        c[std::size_t{rc.sp} * st] += rc.n;
      for (const sp_count& rc : rp.creations[o - n].wrap)
        w[std::size_t{rc.sp} * st] += rc.n;
    } else {
      for (species_id s = 0; s < num_species_; ++s) {
        c[std::size_t{s} * st] = old_cell(o, s);
        w[std::size_t{s} * st] = old_wrap_cell(o, s);
      }
    }
  }
  std::uint64_t* host_c = tc + std::size_t{new_host} * num_species_ * st;
  const auto bump = [&](std::uint64_t* row, const sp_delta& d) {
    std::uint64_t& cell = row[std::size_t{d.sp} * st];
    cell = static_cast<std::uint64_t>(static_cast<std::int64_t>(cell) + d.d);
  };
  for (const sp_delta& d : rp.host_delta) bump(host_c, d);
  if (rp.has_child) {
    if (rp.fate == child_fate::keep) {
      std::uint64_t* cc = tc + std::size_t{new_bound} * num_species_ * st;
      for (const sp_delta& d : rp.child_delta) bump(cc, d);
    } else if (rp.fate == child_fate::dissolve) {
      // Release the dissolved child's post-edit content plus its membrane
      // into the host (exact integer adds; order is immaterial). Old-column
      // reads stay valid: colA is freed only after staging completes.
      for (species_id s = 0; s < num_species_; ++s)
        host_c[std::size_t{s} * st] +=
            old_cell(md.child, s) + old_wrap_cell(md.child, s);
      for (const sp_delta& d : rp.child_delta) bump(host_c, d);
    }
  }

  // ---- propensities: per-match carry, re-evaluating only changed inputs.
  // A match value is a pure function of the counts it reads, so any match
  // whose host row, bound-child row, and existence are unchanged keeps its
  // value bit-exactly. Structural edits change: the host's content and
  // child list, the kept bound child's content, and nothing else — so only
  // the host block (selectively), the parent block's matches *binding the
  // host* (selectively), the kept bound child's block, and created nodes'
  // blocks can need re-evaluation.
  eval_list_.clear();

  // Conservative set of host-content species that changed (over-marking
  // only costs a re-evaluation, which returns the identical value).
  changed_host_.assign(num_species_, 0);
  for (const sp_delta& d : rp.host_delta) changed_host_[d.sp] = 1;
  if (rp.has_child && rp.fate == child_fate::dissolve) {
    for (species_id s = 0; s < num_species_; ++s)
      if ((old_cell(md.child, s) | old_wrap_cell(md.child, s)) != 0)
        changed_host_[s] = 1;
    for (const sp_delta& d : rp.child_delta) changed_host_[d.sp] = 1;
  }
  const auto reads_changed_host = [&](const std::vector<species_id>& reads) {
    for (const species_id s : reads)
      if (changed_host_[s] != 0) return true;
    return false;
  };

  const std::uint32_t old_parent =
      C.nodes[host].parent < 0 ? kNone
                               : static_cast<std::uint32_t>(C.nodes[host].parent);

  for (std::uint32_t i = 0; i < n2; ++i) {
    const std::uint32_t o = origin[i];
    const std::uint32_t first2 = C2->block_first[i];
    const std::uint32_t cnt2 = C2->block_count[i];
    if (o >= n) {  // created this firing: everything is new
      for (std::uint32_t mi = first2; mi < first2 + cnt2; ++mi)
        eval_list_.push_back(mi);
      continue;
    }
    if (i == new_host) {
      // Child list and (possibly) content changed: walk the new block with
      // a forward cursor over the old block (relative order of surviving
      // children is preserved, so old counterparts appear in order).
      std::uint32_t cursor = C.block_first[host];
      const std::uint32_t old_end = cursor + C.block_count[host];
      for (std::uint32_t mi = first2; mi < first2 + cnt2; ++mi) {
        const match_desc& m2 = C2->matches[mi];
        const std::uint32_t oc_id =
            m2.child == kNone ? kNone : origin[m2.child];
        const bool was_child_of_host =
            m2.child == kNone ||
            (oc_id < n && C.nodes[oc_id].parent ==
                              static_cast<std::int32_t>(host));
        std::uint32_t old_mi = kNone;
        if (was_child_of_host) {
          while (cursor < old_end) {
            const match_desc& mo = C.matches[cursor];
            const bool hit = mo.rule == m2.rule &&
                             mo.child == (m2.child == kNone ? kNone : oc_id);
            ++cursor;
            if (hit) {
              old_mi = cursor - 1;
              break;
            }
          }
        }
        const rule_plan& pj = plans_[m2.rule];
        const bool bound_child_edited =
            m2.child != kNone && oc_id == md.child;  // kept + content delta
        if (old_mi != kNone && !bound_child_edited &&
            !reads_changed_host(pj.host_reads)) {
          tp[std::size_t{mi} * st] = old_prop(old_mi);
        } else {
          eval_list_.push_back(mi);
        }
      }
      continue;
    }
    if (old_parent != kNone && o == old_parent) {
      // The parent's own content and child list are unchanged (edits happen
      // at/below the host), so the block is positionally identical; only
      // matches binding the host can have changed inputs.
      util::ensures(cnt2 == C.block_count[o], "parent block shape mismatch");
      for (std::uint32_t k = 0; k < cnt2; ++k) {
        const match_desc& m2 = C2->matches[first2 + k];
        const bool dirty = m2.child == new_host &&
                           reads_changed_host(plans_[m2.rule].child_reads);
        if (dirty)
          eval_list_.push_back(first2 + k);
        else
          tp[std::size_t{first2 + k} * st] = old_prop(C.block_first[o] + k);
      }
      continue;
    }
    if (i == new_bound) {  // kept bound child with edited content
      for (std::uint32_t mi = first2; mi < first2 + cnt2; ++mi)
        eval_list_.push_back(mi);
      continue;
    }
    // Untouched subtree: counts, children, and therefore every match value
    // and the block fold carry over verbatim.
    util::ensures(cnt2 == C.block_count[o], "carried block shape mismatch");
    for (std::uint32_t k = 0; k < cnt2; ++k)
      tp[std::size_t{first2 + k} * st] = old_prop(C.block_first[o] + k);
    ts[std::size_t{i} * st] = P.block_sub[std::size_t{o} * capA + colA];
  }

  const rate_tape& T = *tape_for_lane(lane);
  for (const std::uint32_t mi : eval_list_) {
    const match_desc& m2 = C2->matches[mi];
    const tape_program& pg = T.program(m2.rule);
    const std::uint64_t* hc = tc + std::size_t{m2.host} * num_species_ * st;
    const std::uint64_t* cw = nullptr;
    const std::uint64_t* cc = nullptr;
    if (m2.child != kNone) {
      cw = tw + std::size_t{m2.child} * num_species_ * st;
      cc = tc + std::size_t{m2.child} * num_species_ * st;
    }
    tp[std::size_t{mi} * st] = T.eval(pg, hc, cw, cc, st);
  }
  // Re-fold every block that was not carried whole (canonical order keeps
  // carried-entry sums bit-identical to a full re-enumeration).
  for (std::uint32_t i = 0; i < n2; ++i) {
    const std::uint32_t o = origin[i];
    const bool carried_whole = o < n && i != new_host && i != new_bound &&
                               !(old_parent != kNone && o == old_parent);
    if (carried_whole) continue;
    const std::uint32_t first2 = C2->block_first[i];
    double sub = 0.0;
    for (std::uint32_t mi = first2; mi < first2 + C2->block_count[i]; ++mi)
      sub += tp[std::size_t{mi} * st];
    ts[std::size_t{i} * st] = sub;
  }

  // ---- commit ----
  free_col(P, colA);
  if (!direct) {
    // Dense fallback: the staged column scatters into the (possibly
    // recycled) pool column only now that staging is complete.
    colB = alloc_col(P2);
    P2.cell_of[colB] = lane_cell_[lane];
    const std::size_t capB = P2.cap;
    for (std::size_t r = 0; r < std::size_t{n2} * num_species_; ++r) {
      P2.content[r * capB + colB] = new_content_[r];
      P2.wrap[r * capB + colB] = new_wrap_[r];
    }
    for (std::size_t mi = 0; mi < C2->matches.size(); ++mi)
      P2.prop[mi * capB + colB] = new_prop_[mi];
    for (std::size_t b = 0; b < n2; ++b)
      P2.block_sub[b * capB + colB] = new_block_sub_[b];
  }
  lane_pool_[lane] = &P2;
  lane_col_[lane] = colB;

  // Family entry: a lane landing on a class with an eligible trailing slot
  // run is re-laid into the family's shared pool, so later slot appends and
  // dissolves run in place and the ensemble stops scattering over per-K
  // pools. A lane landing directly on a family's layout class already sits
  // in the family pool — it just needs its slot count pinned.
  if (P2.fam != nullptr) {
    lane_slots_[lane] = P2.fam->max_slots;
  } else if (family* F = family_entry_for(C2); F != nullptr) {
    migrate_to_family(lane, *F);
  }
}

void batch_engine::fire(std::size_t lane, double target) {
  class_pool& P = *lane_pool_[lane];
  const std::uint32_t col = lane_col_[lane];
  const shape_class& C = *P.cls;
  const std::size_t cap = P.cap;

  // Two-level selection, scalar-engine arithmetic: prefix walk over the
  // pre-order block subtotals, then a left-to-right scan inside the block,
  // with the same floating-point-tail fallbacks (last feasible match of the
  // block, then of the whole term).
  std::uint32_t chosen = kNone;
  double cum = 0.0;
  // Family lanes stop the walk at their own node count: the reserve
  // blocks' subtotals are exact zeros, invisible to both sum and scan.
  const std::size_t n = live_nodes(lane);
  for (std::uint32_t b = 0; b < n; ++b) {
    const double sub = P.block_sub[std::size_t{b} * cap + col];
    const double with = cum + sub;
    if (sub > 0.0 && with >= target) {
      double inner = cum;
      const std::uint32_t first = C.block_first[b];
      const std::uint32_t count = C.block_count[b];
      for (std::uint32_t mi = first; mi < first + count; ++mi) {
        const double p = P.prop[std::size_t{mi} * cap + col];
        if (p <= 0.0) continue;  // absent from the scalar match list
        inner += p;
        if (inner >= target) {
          chosen = mi;
          break;
        }
      }
      if (chosen == kNone) {
        for (std::uint32_t mi = first + count; mi-- > first;) {
          if (P.prop[std::size_t{mi} * cap + col] > 0.0) {
            chosen = mi;
            break;
          }
        }
      }
      break;
    }
    cum = with;
  }
  if (chosen == kNone) {
    for (std::uint32_t mi = static_cast<std::uint32_t>(C.matches.size());
         mi-- > 0;) {
      if (P.prop[std::size_t{mi} * cap + col] > 0.0) {
        chosen = mi;
        break;
      }
    }
  }
  util::ensures(chosen != kNone, "batch SSA selection on empty match set");

  const match_desc& md = C.matches[chosen];
  const rule_plan& rp = plans_[md.rule];
  if (rp.structural) {
    apply_structural(lane, md, rp);
  } else {
    apply_fast(P, col, md, rp);
  }
  ++steps_[lane];
}

void batch_engine::drain_lane(std::size_t lane, double t_end,
                              double sample_period,
                              std::vector<trajectory_sample>& out) {
  // Per-lane scalar drain to the quantum horizon. The per-lane operation
  // order (total fold, clock draw, sample emission, selection draw, fire)
  // and every arithmetic expression match the lockstep rounds exactly —
  // lanes own independent RNG streams, so peeling one lane out of the
  // round cadence cannot perturb any other lane's draws.
  while (true) {
    ++round_;  // keeps the per-round dirty-list dedupe stamps unique
    const class_pool& P = *lane_pool_[lane];
    const double total =
        fold_total_col(P, lane_col_[lane], live_nodes(lane));
    if (total <= 0.0) {
      stalled_[lane] = 1;
      emit_frozen_tail(lane, t_end, sample_period, out);
      done_[lane] = 1;
      return;
    }
    double t_next;
    if (has_pending_[lane] != 0) {
      t_next = pending_[lane];
    } else {
      const double u = rng_.next_uniform_pos(lane);
      t_next = time_[lane] + (-std::log(u) / total);
    }
    while (next_sample_t_[lane] <= q_emit_horizon_[lane] &&
           next_sample_t_[lane] <= t_next) {
      record_sample(lane, next_sample_t_[lane], out);
      next_sample_t_[lane] = sample_time(++next_sample_k_[lane], sample_period);
    }
    if (t_next > q_horizon_[lane]) {
      pending_[lane] = t_next;
      has_pending_[lane] = 1;
      time_[lane] = q_horizon_[lane];
      done_[lane] = time_[lane] >= t_end ? 1 : 0;
      return;
    }
    has_pending_[lane] = 0;
    const double u2 = rng_.next_uniform_pos(lane);
    fire(lane, u2 * total);
    time_[lane] = t_next;
    // Immediate flush: the next iteration's total fold must see this
    // fire's propensity updates (single-column masks stay below the wide
    // thresholds, so this is the scalar incremental path).
    for (class_pool* FP : flush_pools_) flush_pool(*FP);
    flush_pools_.clear();
  }
}

void batch_engine::step_quantum(
    double quantum, double t_end, double sample_period,
    std::vector<std::vector<trajectory_sample>>& out) {
  util::expects(quantum > 0.0, "quantum must be positive");
  util::expects(sample_period > 0.0, "sample period must be positive");
  const std::size_t w = width();
  out.resize(w);

  active_lanes_.clear();
  for (std::size_t l = 0; l < w; ++l) {
    if (done_[l] != 0 && time_[l] >= t_end) continue;
    done_[l] = 0;
    q_horizon_[l] = std::min(time_[l] + quantum, t_end);
    q_emit_horizon_[l] =
        q_horizon_[l] + sample_tolerance(q_horizon_[l], sample_period);
    // Cache the next sample instant: the hot Phase B loop tests it once
    // per step but crosses a grid point rarely. Recomputed only on grid
    // advance, bit-identical to calling sample_time() at each test.
    next_sample_t_[l] = sample_time(next_sample_k_[l], sample_period);
    active_lanes_.push_back(static_cast<std::uint32_t>(l));
  }

  // Lockstep rounds, phased across the ensemble: every live lane executes
  // at most one SSA step per round, and each phase runs lane-batched so
  // totals, clock draws, and the propensity flush can go wide. Per lane
  // the order of operations (and therefore its RNG draw sequence: clock
  // draw, then selection draw) is exactly the scalar engine's; lanes own
  // independent streams, so batching draws across lanes is order-free.
  while (!active_lanes_.empty()) {
    ++round_;

    // ---- Phase A: stall tails, per-pool totals, clock draws ----------
    {
      std::size_t i = 0;
      while (i < active_lanes_.size()) {
        const std::size_t l = active_lanes_[i];
        if (stalled_[l] != 0) {
          emit_frozen_tail(l, t_end, sample_period, out[l]);
          done_[l] = 1;  // time_ == t_end
          active_lanes_[i] = active_lanes_.back();
          active_lanes_.pop_back();
        } else {
          ++i;
        }
      }
    }
    if (active_lanes_.empty()) break;

    totals_pools_.clear();
    for (const std::uint32_t l : active_lanes_) {
      class_pool* P = lane_pool_[l];
      if (P->totals_round != round_) {
        P->totals_round = round_;
        P->totals_need = 0;
        P->totals_wide = false;
        totals_pools_.push_back(P);
      }
      ++P->totals_need;
    }

    // Sparse tail: when live lanes are spread too thin across their pools
    // for row sweeps to pay (the long tail of a quantum, or shape-churning
    // models whose lanes scatter over many classes), finish the quantum in
    // per-lane drain loops — same arithmetic, none of the round overhead.
    if (active_lanes_.size() < drain_density_ * totals_pools_.size()) {
      for (const std::uint32_t l : active_lanes_)
        drain_lane(l, t_end, sample_period, out[l]);
      active_lanes_.clear();
      break;
    }

    for (class_pool* P : totals_pools_) {
      if (P->totals_need < wide_total_min_) continue;
      kernels::fold_rows_wide(P->block_sub.data(), 0, P->hot_nodes, P->cap,
                              P->total.data());
      P->totals_wide = true;
    }

    draw_list_.clear();
    for (const std::uint32_t l : active_lanes_) {
      const class_pool& P = *lane_pool_[l];
      const std::uint32_t col = lane_col_[l];
      const double total =
          P.totals_wide ? P.total[col] : fold_total_col(P, col, live_nodes(l));
      total_scratch_[l] = total;
      if (total <= 0.0) {
        stalled_[l] = 1;  // next round emits the frozen tail
        continue;
      }
      if (has_pending_[l] != 0)
        t_next_scratch_[l] = pending_[l];
      else
        draw_list_.push_back(l);
    }
    {
      const std::size_t m = draw_list_.size();
      u_scratch_.resize(m);
      const bool dense = m == w;  // every lane draws: vectorized fill
      if (dense)
        rng_.fill_uniform_pos_all(u_scratch_.data());
      else
        rng_.fill_uniform_pos(draw_list_.data(), m, u_scratch_.data());
      for (std::size_t j = 0; j < m; ++j) {
        const std::size_t l = draw_list_[j];
        const double u = u_scratch_[dense ? l : j];
        // rng_stream::next_exponential's expression, over the batch draw.
        t_next_scratch_[l] = time_[l] + (-std::log(u) / total_scratch_[l]);
      }
    }

    // ---- Phase B: sample emission, parking ---------------------------
    fire_list_.clear();
    {
      std::size_t i = 0;
      while (i < active_lanes_.size()) {
        const std::size_t l = active_lanes_[i];
        if (stalled_[l] != 0) {  // newly stalled: tail next round
          ++i;
          continue;
        }
        const double t_next = t_next_scratch_[l];
        while (next_sample_t_[l] <= q_emit_horizon_[l] &&
               next_sample_t_[l] <= t_next) {
          record_sample(l, next_sample_t_[l], out[l]);
          next_sample_t_[l] = sample_time(++next_sample_k_[l], sample_period);
        }
        if (t_next > q_horizon_[l]) {
          // Keep the deferred reaction across the quantum boundary: the
          // sample path stays bit-for-bit independent of the quantum size.
          pending_[l] = t_next;
          has_pending_[l] = 1;
          time_[l] = q_horizon_[l];
          done_[l] = time_[l] >= t_end ? 1 : 0;
          active_lanes_[i] = active_lanes_.back();
          active_lanes_.pop_back();
        } else {
          has_pending_[l] = 0;
          fire_list_.push_back(static_cast<std::uint32_t>(l));
          ++i;
        }
      }
    }

    // ---- Phase C: selection draws + firings --------------------------
    {
      const std::size_t m = fire_list_.size();
      u_scratch_.resize(m);
      const bool dense = m == w;
      if (dense)
        rng_.fill_uniform_pos_all(u_scratch_.data());
      else
        rng_.fill_uniform_pos(fire_list_.data(), m, u_scratch_.data());
      for (std::size_t j = 0; j < m; ++j) {
        const std::size_t l = fire_list_[j];
        const double u = u_scratch_[dense ? l : j];
        fire(l, u * total_scratch_[l]);
        time_[l] = t_next_scratch_[l];
      }
    }

    // ---- Phase D: deferred propensity/fold flush per touched pool ----
    for (class_pool* P : flush_pools_) flush_pool(*P);
    flush_pools_.clear();
  }
}

std::unique_ptr<term> batch_engine::materialize_state(std::size_t lane) const {
  const class_pool& P = *lane_pool_[lane];
  const std::uint32_t col = lane_col_[lane];
  const shape_class& C = *P.cls;
  const std::size_t cap = P.cap;
  const auto build = [&](auto&& self, std::uint32_t i) -> std::unique_ptr<term> {
    auto c = std::make_unique<compartment>(C.nodes[i].type, num_species_);
    for (species_id s = 0; s < num_species_; ++s) {
      const std::uint64_t cc =
          P.content[(std::size_t{i} * num_species_ + s) * cap + col];
      const std::uint64_t cw =
          P.wrap[(std::size_t{i} * num_species_ + s) * cap + col];
      if (cc != 0) c->content().set(s, cc);
      if (cw != 0) c->wrap().set(s, cw);
    }
    for (const std::uint32_t k : C.children[i]) {
      // Family layout: children beyond the lane's live slot count are the
      // zero-filled reserve rows, not part of the lane's term.
      if (P.fam != nullptr && k >= P.fam->skeleton_n + lane_slots_[lane])
        continue;
      c->add_child(self(self, k));
    }
    return c;
  };
  return build(build, 0);
}

}  // namespace cwc::batch
