// Tests for the discrete-event simulator and the pipeline platform models:
// event ordering, resource laws (work conservation, makespan bounds),
// links, trace capture invariants, and qualitative scaling properties.
#include <gtest/gtest.h>

#include "des/des.hpp"
#include "models/models.hpp"

namespace {

TEST(DesEngine, ExecutesInTimeOrderWithFifoTieBreak) {
  des::engine eng;
  std::vector<int> order;
  eng.at(2.0, [&] { order.push_back(3); });
  eng.at(1.0, [&] { order.push_back(1); });
  eng.at(2.0, [&] { order.push_back(4); });  // same time: FIFO
  eng.at(1.5, [&] { order.push_back(2); });
  const double end = eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(end, 2.0);
  EXPECT_EQ(eng.events_executed(), 4u);
}

TEST(DesEngine, HandlersMayScheduleMoreEvents) {
  des::engine eng;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) eng.after(1.0, tick);
  };
  eng.after(1.0, tick);
  EXPECT_DOUBLE_EQ(eng.run(), 5.0);
  EXPECT_EQ(count, 5);
}

TEST(DesEngine, RejectsPastEvents) {
  des::engine eng;
  eng.at(5.0, [&] { EXPECT_THROW(eng.at(1.0, [] {}), util::precondition_error); });
  eng.run();
}

TEST(Resource, SingleServerSerialisesJobs) {
  des::engine eng;
  des::resource r(eng, 1);
  std::vector<double> finish;
  for (int i = 0; i < 3; ++i)
    r.submit(2.0, [&] { finish.push_back(eng.now()); });
  eng.run();
  EXPECT_EQ(finish, (std::vector<double>{2.0, 4.0, 6.0}));
  EXPECT_DOUBLE_EQ(r.busy_seconds(), 6.0);
}

TEST(Resource, MultiServerRunsInParallel) {
  des::engine eng;
  des::resource r(eng, 3);
  std::vector<double> finish;
  for (int i = 0; i < 3; ++i)
    r.submit(2.0, [&] { finish.push_back(eng.now()); });
  EXPECT_DOUBLE_EQ(eng.run(), 2.0);
  EXPECT_EQ(finish.size(), 3u);
}

TEST(Resource, WorkConservation) {
  // 10 jobs of 1s on 4 servers: makespan in [ceil(10/4), 10].
  des::engine eng;
  des::resource r(eng, 4);
  for (int i = 0; i < 10; ++i) r.submit(1.0, [] {});
  const double makespan = eng.run();
  EXPECT_GE(makespan, 10.0 / 4.0 - 1e-9);
  EXPECT_LE(makespan, 10.0 + 1e-9);
  EXPECT_EQ(r.jobs_completed(), 10u);
}

TEST(SlotPool, LimitsConcurrency) {
  des::engine eng;
  des::slot_pool slots(eng, 2);
  int held = 0, peak = 0;
  for (int i = 0; i < 6; ++i) {
    slots.acquire([&] {
      peak = std::max(peak, ++held);
      eng.after(1.0, [&] {
        --held;
        slots.release();
      });
    });
  }
  eng.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(slots.available(), 2u);
}

TEST(Link, LatencyPlusBandwidth) {
  des::engine eng;
  des::link l(eng, 0.01, 1000.0);  // 10ms, 1kB/s
  double delivered = -1.0;
  l.send(500.0, [&] { delivered = eng.now(); });
  eng.run();
  EXPECT_NEAR(delivered, 0.51, 1e-9);  // 0.5s transfer + 10ms latency
}

TEST(Link, WireSerialisesTransfersLatencyOverlaps) {
  des::engine eng;
  des::link l(eng, 0.1, 100.0);
  std::vector<double> times;
  l.send(10.0, [&] { times.push_back(eng.now()); });  // xfer 0.1
  l.send(10.0, [&] { times.push_back(eng.now()); });  // queued behind
  eng.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_NEAR(times[0], 0.2, 1e-9);  // 0.1 xfer + 0.1 latency
  EXPECT_NEAR(times[1], 0.3, 1e-9);  // wire busy until 0.2, +0.1 latency
}

// ---------------------------- trace capture ------------------------------

TEST(Trace, CaptureMatchesRealEngineTotals) {
  const auto m = models::make_neurospora_cwc({});
  cwcsim::model_ref mr;
  mr.tree = &m;
  cwcsim::sim_config cfg;
  cfg.num_trajectories = 6;
  cfg.t_end = 10.0;
  cfg.sample_period = 0.5;
  cfg.quantum = 2.0;

  const auto w = des::capture_workload(mr, cfg);
  EXPECT_EQ(w.num_trajectories, 6u);
  EXPECT_EQ(w.num_samples, cfg.num_samples());
  ASSERT_EQ(w.quanta.size(), 6u);

  // Per-trajectory sample totals cover the grid exactly.
  for (const auto& traj : w.quanta) {
    std::uint64_t samples = 0;
    for (const auto& q : traj) samples += q.samples;
    EXPECT_EQ(samples, w.num_samples);
  }

  // Steps equal a direct sequential run of the same trajectories.
  std::uint64_t direct_steps = 0;
  for (std::uint64_t i = 0; i < 6; ++i) {
    cwc::engine eng(m, cfg.seed, i);
    std::vector<cwc::trajectory_sample> out;
    eng.run_to(cfg.t_end, cfg.sample_period, out);
    direct_steps += eng.steps();
  }
  EXPECT_EQ(w.total_steps(), direct_steps);
}

TEST(Trace, CalibrationProducesSaneNumbers) {
  const auto m = models::make_neurospora_cwc({});
  cwcsim::model_ref mr;
  mr.tree = &m;
  cwcsim::sim_config cfg;
  cfg.num_trajectories = 8;
  const auto cal = des::calibrate(mr, cfg);
  EXPECT_GT(cal.sim_ns_per_step, 1.0);
  EXPECT_LT(cal.sim_ns_per_step, 1e6);
  EXPECT_GT(cal.stat_ns_per_point, 0.1);
  EXPECT_GT(cal.align_ns_per_sample, 0.0);
}

// --------------------------- platform models -----------------------------

class des_fixture : public ::testing::Test {
 protected:
  static const des::workload& workload() {
    static const des::workload w = [] {
      const auto* m = model();
      cwcsim::model_ref mr;
      mr.tree = m;
      cwcsim::sim_config cfg;
      cfg.num_trajectories = 32;
      cfg.t_end = 20.0;
      cfg.sample_period = 0.5;
      cfg.quantum = 2.5;
      return des::capture_workload(mr, cfg);
    }();
    return w;
  }
  static const cwc::model* model() {
    static const cwc::model m = models::make_neurospora_cwc({});
    return &m;
  }
  static des::calibration cal() {
    des::calibration c;
    c.sim_ns_per_step = 250.0;
    c.stat_ns_per_point = 50.0;
    c.align_ns_per_sample = 100.0;
    return c;
  }
};

TEST_F(des_fixture, MulticoreMakespanBounds) {
  const auto host = des::platforms::nehalem_32core();
  for (unsigned W : {1u, 4u, 16u}) {
    des::farm_params fp;
    fp.sim_workers = W;
    fp.stat_engines = 2;
    const auto o = des::simulate_multicore(workload(), cal(), host, fp);
    // Makespan can never beat perfect parallelism of sim work alone, nor
    // exceed fully serialised total work.
    EXPECT_GE(o.makespan_s, o.sim_busy_s / W - 1e-9) << "W=" << W;
    EXPECT_LE(o.makespan_s, o.sim_busy_s + o.stat_busy_s + 1.0);
    EXPECT_EQ(o.cuts, workload().num_samples);
  }
}

TEST_F(des_fixture, SpeedupMonotoneAndBounded) {
  const auto host = des::platforms::nehalem_32core();
  double prev = 0.0;
  des::farm_params fp;
  fp.stat_engines = 4;
  fp.sim_workers = 1;
  const double t1 = des::simulate_multicore(workload(), cal(), host, fp).makespan_s;
  for (unsigned W : {2u, 4u, 8u, 16u}) {
    fp.sim_workers = W;
    const double t = des::simulate_multicore(workload(), cal(), host, fp).makespan_s;
    const double speedup = t1 / t;
    EXPECT_GT(speedup, prev * 0.99) << "W=" << W;  // monotone (tolerant)
    EXPECT_LE(speedup, W * 1.01);                  // never superlinear
    prev = speedup;
  }
}

TEST_F(des_fixture, StatBottleneckCapsSpeedupAndMoreEnginesLiftIt) {
  // Inflate stat cost so one engine fully saturates; four engines must help.
  auto c = cal();
  c.stat_ns_per_point = 12000.0;
  const auto host = des::platforms::nehalem_32core();
  des::farm_params one;
  one.sim_workers = 16;
  one.stat_engines = 1;
  des::farm_params four = one;
  four.stat_engines = 4;
  const auto t_one = des::simulate_multicore(workload(), c, host, one).makespan_s;
  const auto t_four = des::simulate_multicore(workload(), c, host, four).makespan_s;
  EXPECT_LT(t_four, t_one * 0.6);
}

TEST_F(des_fixture, OnDemandBeatsRoundRobinOnUnbalancedWork) {
  const auto host = des::platforms::nehalem_32core();
  des::farm_params od;
  od.sim_workers = 8;
  od.stat_engines = 4;
  des::farm_params rr = od;
  rr.policy = des::dispatch_policy::round_robin;
  const auto t_od = des::simulate_multicore(workload(), cal(), host, od).makespan_s;
  const auto t_rr = des::simulate_multicore(workload(), cal(), host, rr).makespan_s;
  EXPECT_LE(t_od, t_rr * 1.02);  // on-demand at least as good
}

TEST_F(des_fixture, CoreContentionSlowsOversubscribedHost) {
  // Same farm on a 4-core host vs a 64-core host: the big host cannot be
  // slower.
  des::farm_params fp;
  fp.sim_workers = 4;
  fp.stat_engines = 2;
  des::host_spec small{"small", 4, 1.0, 1.0};
  const auto t_small = des::simulate_multicore(workload(), cal(), small, fp);
  const auto t_big = des::simulate_multicore(
      workload(), cal(), des::platforms::nehalem_32core(), fp);
  EXPECT_GE(t_small.makespan_s, t_big.makespan_s - 1e-9);
}

TEST_F(des_fixture, ClusterCompletesAndScalesWithHosts) {
  des::cluster_params cp;
  cp.master = des::platforms::xeon_x5670();
  cp.network = des::platforms::ipoib();
  cp.sim_workers_per_host = 2;
  cp.stat_engines = 4;

  cp.hosts = {des::platforms::xeon_x5670()};
  const auto t1 = des::simulate_cluster(workload(), cal(), cp);
  EXPECT_EQ(t1.cuts, workload().num_samples);
  EXPECT_GT(t1.messages, 0u);

  cp.hosts.assign(4, des::platforms::xeon_x5670());
  const auto t4 = des::simulate_cluster(workload(), cal(), cp);
  EXPECT_LT(t4.makespan_s, t1.makespan_s);
  // With 4x the hosts, ideal is 4x; accept >= 2x on this small workload.
  EXPECT_GT(t1.makespan_s / t4.makespan_s, 2.0);
}

TEST_F(des_fixture, SlowerNetworkNeverHelps) {
  des::cluster_params cp;
  cp.master = des::platforms::xeon_x5670();
  cp.sim_workers_per_host = 2;
  cp.hosts.assign(4, des::platforms::xeon_x5670());

  cp.network = des::platforms::ipoib();
  const auto fast = des::simulate_cluster(workload(), cal(), cp);
  cp.network = des::platforms::eth_1g();
  const auto slow = des::simulate_cluster(workload(), cal(), cp);
  EXPECT_GE(slow.makespan_s, fast.makespan_s - 1e-9);
}

}  // namespace
