// The distributed deployment of the CWC simulation-analysis pipeline
// (paper §IV-B, Fig. 2 bottom): a virtual cluster of multicore hosts, each
// running a farm of simulation engines over its partition of the
// trajectories, streaming serialized sample batches to a master that runs
// the alignment + sliding-window + statistics stages on-line.
//
// Because every trajectory's engine is seeded by (seed, trajectory_id) and
// the alignment stage indexes cut values by trajectory id, the distributed
// run reproduces the shared-memory simulator's windowed statistics
// bit-exactly, regardless of how trajectories are partitioned or how
// messages interleave on the network.
//
// The model itself crosses the wire ONCE per run: the master encodes the
// model description into a versioned frame (dist/model_codec.hpp) and
// ships it to every host over the modeled network; each host decodes and
// compiles its own cwc::compiled_model, then builds every engine from that
// shared artifact. Models that cannot be encoded (custom rate laws) fall
// back to sharing the master's in-process artifact.
#pragma once

#include <cstdint>

#include "core/cwcsim.hpp"
#include "dist/net_channel.hpp"
#include "dist/wire.hpp"

namespace dist {

/// Deployment description: the base pipeline configuration plus the shape
/// of the virtual cluster and its network.
struct dist_config {
  cwcsim::sim_config base;
  unsigned num_hosts = 2;        ///< simulated multicore hosts
  unsigned workers_per_host = 2; ///< simulation engines per host
  net_params network;            ///< host -> master link model
};

/// Distributed run output: the ordinary simulation result plus the traffic
/// that crossed the (simulated) network.
struct dist_result {
  cwcsim::simulation_result result;
  std::size_t messages = 0;  ///< messages received by the master
  double bytes = 0.0;        ///< serialized payload bytes shipped
  /// Compiled-model frames shipped master -> hosts, once per run (0 when
  /// the model is not wire-encodable and hosts fell back to in-process
  /// sharing).
  double model_bytes = 0.0;
};

class distributed_simulator {
 public:
  distributed_simulator(const cwc::model& m, dist_config cfg);
  distributed_simulator(const cwc::reaction_network& n, dist_config cfg);
  distributed_simulator(cwcsim::model_ref model, dist_config cfg);

  const dist_config& config() const noexcept { return cfg_; }

  /// Execute the virtual cluster and gather the master's results (batch
  /// wrapper over the streaming form below).
  dist_result run();

  /// Streaming form (the cwcsim::distributed backend driver): the master
  /// pushes each window summary and completion notice through `sink` as
  /// the on-line analysis emits it, honours sink.stop_requested() at
  /// quantum boundaries on every host, and fills `report` (result.windows
  /// excepted — the sink's owner collects the stream).
  void run(cwcsim::event_sink& sink, cwcsim::run_report& report);

 private:
  cwcsim::model_ref model_;
  dist_config cfg_;
};

}  // namespace dist
