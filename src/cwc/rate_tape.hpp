// Rate-law bytecode tape: every rule's propensity closed form, compiled to
// a flat op sequence evaluated with zero virtual/branchy per-kind dispatch.
//
// The batch engine's hot loop evaluates the SAME rule over many lanes whose
// per-lane counts sit in lane-major strips. A rule's propensity is
//
//   comb_host * (comb_wrap * comb_child)   -- the match combinatorics --
//
// fed into one of four closed-form heads (mass-action, Michaelis-Menten,
// Hill repression/activation). The tape flattens the combinatoric part into
// a run of choose() ops (ascending species inside each segment, segments in
// host -> wrap -> child order, exactly the order and *grouping*
// rule::match_propensity uses — FP multiplication is not associative, so
// the grouping is part of the bit-exactness contract) and the head into a
// small parameter block. Evaluation is a straight-line walk: no rate_law
// switch inside the per-lane loop, and the wide kernels
// (batch/batch_kernels.hpp) hoist each op's k-specialisation outside the
// lane loop entirely.
//
// `custom` laws carry an opaque callable over the full match context; they
// compile to a head-only program that eval() refuses (batch_engine gates
// them out via supports(); scalar engines never consult the tape).
//
// Exactness: eval() returns bit-for-bit the double rule::match_propensity
// (equivalently batch_engine's per-match evaluation) computes for the same
// counts. Infeasible matches (some required count short) return +0.0 — the
// scalar code early-returns the literal 0.0, the tape computes the full
// masked expression; both produce +0.0. Feasible matches run the identical
// left-to-right factor sequence through cwc::choose and the identical head
// expression tree (detail::hill_pow included).
#pragma once

#include <cstdint>
#include <vector>

#include "cwc/multiset.hpp"
#include "cwc/rate_law.hpp"
#include "cwc/species.hpp"
#include "util/check.hpp"

namespace cwc {

class model;

/// Closed-form head applied to the match combinatorics.
enum class tape_head : std::uint8_t {
  mass_action,       ///< a * comb
  michaelis_menten,  ///< a * x / (b + x)
  hill_repression,   ///< a * kn / (kn + x^n)
  hill_activation,   ///< a * x^n / (kn + x^n)
  custom,            ///< no closed form; never evaluated through the tape
};

/// One combinatoric factor: choose(count[sp], k), k > 0 (zero-multiplicity
/// species are omitted at compile time, mirroring multiset::combinations).
/// The source array (host content / child wrap / child content) is implied
/// by which segment of the program the op sits in.
struct tape_op {
  species_id sp = 0;
  std::uint32_t k = 0;
};

/// One rule's compiled program: an op range split into the three source
/// segments plus the head parameter block (constants pre-resolved from the
/// rate_law through its accessors, so the tape cannot drift from what
/// evaluate_direct itself uses).
struct tape_program {
  std::uint32_t first_op = 0;
  std::uint16_t n_host = 0;   ///< host-content ops
  std::uint16_t n_wrap = 0;   ///< bound child's membrane ops
  std::uint16_t n_child = 0;  ///< bound child's content ops
  tape_head head = tape_head::custom;
  bool has_child = false;        ///< rule binds a child compartment
  bool has_driver = false;       ///< head reads a driver copy number
  bool driver_in_child = false;  ///< driver read from the bound child
  species_id driver = 0;
  double a = 0.0;    ///< k | Vmax | v
  double b = 0.0;    ///< Km (Michaelis-Menten)
  double n = 0.0;    ///< Hill exponent
  double kn = 0.0;   ///< precomputed K^n (Hill)
  int hill_exp = -1; ///< Hill n as small non-negative int, -1 => libm pow
};

/// The per-model tape: one program per rule, declaration order, over one
/// shared flat op array. Immutable after compile(); stored in
/// compiled_model and shared by every engine like the other static tables.
class rate_tape {
 public:
  rate_tape() = default;

  /// Compile every rule of a tree model. Never fails: custom laws become
  /// head-only `custom` programs the evaluator refuses.
  static rate_tape compile(const model& m);

  std::size_t num_programs() const noexcept { return progs_.size(); }
  const tape_program& program(std::size_t rule) const {
    return progs_[rule];
  }
  const tape_op* ops() const noexcept { return ops_.data(); }

  /// Rewrite the constant-scale operand of rule `rule`'s program — the
  /// sweep-overlay patch path. Only mass-action heads have a single
  /// overlayable constant (p = a * comb); the compiled_model overlay layer
  /// guards the head kind via rate_law::with_constant before calling this,
  /// so a mismatch here is a programming error, not user input.
  void patch_constant(std::size_t rule, double a) {
    util::expects(rule < progs_.size() &&
                      progs_[rule].head == tape_head::mass_action,
                  "tape constant patch needs a mass-action program");
    progs_[rule].a = a;
  }

  /// Scalar tape walk over strided count arrays: element `sp` of a count
  /// row lives at base[sp * stride] (stride 1 for dense per-compartment
  /// rows, stride == lane capacity for the batch engine's lane-major
  /// strips). `child_w`/`child_c` may be null when the program binds no
  /// child; a null `child_c` with driver_in_child reads a zero driver
  /// (the scalar engines' missing-child convention).
  double eval(const tape_program& pg, const std::uint64_t* host_c,
              const std::uint64_t* child_w, const std::uint64_t* child_c,
              std::size_t stride) const noexcept {
    const tape_op* op = ops_.data() + pg.first_op;
    // Feasibility mask instead of the scalar code's early returns: the
    // masked result is +0.0 either way, and the feasible path multiplies
    // the identical factor sequence.
    bool ok = true;
    double comb = 1.0;
    for (std::uint32_t i = 0; i < pg.n_host; ++i, ++op) {
      const std::uint64_t have = host_c[op->sp * stride];
      ok &= have >= op->k;
      comb *= choose(have, op->k);
    }
    if (pg.has_child) {
      double w = 1.0;
      for (std::uint32_t i = 0; i < pg.n_wrap; ++i, ++op) {
        const std::uint64_t have = child_w[op->sp * stride];
        ok &= have >= op->k;
        w *= choose(have, op->k);
      }
      double cc = 1.0;
      for (std::uint32_t i = 0; i < pg.n_child; ++i, ++op) {
        const std::uint64_t have = child_c[op->sp * stride];
        ok &= have >= op->k;
        cc *= choose(have, op->k);
      }
      comb *= w * cc;  // match_propensity's grouping: comb * (w * cc)
    }
    double x = 0.0;
    if (pg.has_driver) {
      const std::uint64_t* xr = pg.driver_in_child ? child_c : host_c;
      x = xr != nullptr ? static_cast<double>(xr[pg.driver * stride]) : 0.0;
    }
    double p = 0.0;
    switch (pg.head) {
      case tape_head::mass_action:
        p = pg.a * comb;
        break;
      case tape_head::michaelis_menten:
        // Branchless form of `x == 0 ? 0 : a*x/(b+x)`: at x == 0 the
        // expression is +0/b == +0.0 (b = Km > 0), the same bits.
        p = pg.a * x / (pg.b + x);
        break;
      case tape_head::hill_repression:
        p = pg.a * pg.kn / (pg.kn + detail::hill_pow(x, pg.n, pg.hill_exp));
        break;
      case tape_head::hill_activation: {
        // Branchless form of evaluate_direct's x==0 early return: for
        // n > 0, x^n is +0 and a*0/(kn+0) == +0/kn == +0.0 (kn = K^n > 0);
        // for n == 0, x^n == 1 and the constant a/2 survives, as it should.
        const double xn = detail::hill_pow(x, pg.n, pg.hill_exp);
        p = pg.a * xn / (pg.kn + xn);
        break;
      }
      case tape_head::custom:
        return 0.0;  // gated out by batch_engine::supports()
    }
    // Feasibility mask + the scalar engines' non-negativity clamp (which
    // also absorbs NaN from masked-out garbage intermediates).
    return (ok && p > 0.0) ? p : 0.0;
  }

 private:
  std::vector<tape_program> progs_;
  std::vector<tape_op> ops_;
};

}  // namespace cwc
