// Public entry point: the shared-memory CWC simulator with on-line parallel
// analysis (paper §IV-A, Fig. 2). Wires
//
//   generation -> farm(simulation engines, feedback) -> alignment ->
//   sliding windows -> farm(statistical engines) -> gather -> sink
//
// into one ff network and runs it to completion.
#pragma once

#include "core/config.hpp"
#include "core/events.hpp"
#include "core/nodes.hpp"
#include "core/result.hpp"

namespace cwcsim {

namespace detail {

/// Build the Fig. 2 network and execute it. With a sink, window summaries
/// and completion notices are streamed through it as the gather stage
/// emits them (result.windows stays empty, and the sink's stop flag is
/// honoured); without one, everything is collected into the result —
/// exactly the pre-session batch behaviour.
simulation_result run_multicore_pipeline(const model_ref& model,
                                         const sim_config& cfg,
                                         event_sink* sink);

}  // namespace detail

/// The original batch entry point. Prefer cwcsim::run() / run_builder
/// (core/session.hpp): the session facade adds on-line window subscription,
/// cooperative cancellation, and backend portability; this class remains as
/// a thin wrapper over the same pipeline.
class multicore_simulator {
 public:
  /// Simulate a CWC term model.
  multicore_simulator(const cwc::model& m, sim_config cfg);

  /// Simulate a flat reaction network with the same pipeline.
  multicore_simulator(const cwc::reaction_network& n, sim_config cfg);

  const sim_config& config() const noexcept { return cfg_; }

  /// Build the Fig. 2 network, execute it, and gather the results.
  /// Rethrows the first exception raised in any stage.
  simulation_result run();

 private:
  model_ref model_;
  sim_config cfg_;
};

/// Convenience one-shot batch helper (see multicore_simulator's note on the
/// streaming session API).
inline simulation_result simulate(const cwc::model& m, const sim_config& cfg) {
  return multicore_simulator(m, cfg).run();
}
inline simulation_result simulate(const cwc::reaction_network& n,
                                  const sim_config& cfg) {
  return multicore_simulator(n, cfg).run();
}

}  // namespace cwcsim
