#include "ff/parallel_for.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ff {

namespace {
thread_local unsigned tls_slot = 0;
}

unsigned parallel_for::worker_slot() noexcept { return tls_slot; }

parallel_for::parallel_for(unsigned nworkers) : nworkers_(std::max(1u, nworkers)) {
  // The calling thread participates, so spawn one fewer.
  pool_.reserve(nworkers_ - 1);
  for (unsigned i = 1; i < nworkers_; ++i) {
    pool_.emplace_back([this, i] { worker_main(i); });
  }
}

parallel_for::~parallel_for() {
  {
    std::lock_guard lk(mutex_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : pool_)
    if (t.joinable()) t.join();
}

void parallel_for::worker_main(unsigned id) {
  tls_slot = id;
  std::uint64_t seen_epoch = 0;
  for (;;) {
    job* j = nullptr;
    {
      std::unique_lock lk(mutex_);
      cv_work_.wait(lk, [&] { return stopping_ || epoch_ != seen_epoch; });
      if (stopping_) return;
      seen_epoch = epoch_;
      j = current_;
    }
    if (j != nullptr) {
      work_on(*j);
      if (j->running.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Take the mutex briefly so the notify cannot slip between the
        // waiter's predicate check and its sleep (lost-wakeup guard).
        { std::lock_guard done_lk(mutex_); }
        cv_done_.notify_all();
      }
    }
  }
}

void parallel_for::work_on(job& j) {
  for (;;) {
    const std::int64_t lo = j.cursor.fetch_add(j.grain, std::memory_order_relaxed);
    if (lo >= j.end) return;
    const std::int64_t hi = std::min(lo + j.grain, j.end);
    (*j.body)(lo, hi);
  }
}

void parallel_for::for_each_chunk(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  util::expects(begin <= end, "for_each_chunk requires begin <= end");
  if (begin == end) return;
  if (grain <= 0) {
    grain = std::max<std::int64_t>(1, (end - begin) / (8 * nworkers_));
  }

  job j;
  j.begin = begin;
  j.end = end;
  j.grain = grain;
  j.body = &body;
  j.cursor.store(begin, std::memory_order_relaxed);
  j.running.store(static_cast<unsigned>(pool_.size()), std::memory_order_relaxed);

  {
    std::lock_guard lk(mutex_);
    current_ = &j;
    ++epoch_;
  }
  cv_work_.notify_all();

  tls_slot = 0;
  work_on(j);  // calling thread participates

  std::unique_lock lk(mutex_);
  cv_done_.wait(lk, [&] { return j.running.load(std::memory_order_acquire) == 0; });
  current_ = nullptr;
}

void parallel_for::for_each(std::int64_t begin, std::int64_t end, std::int64_t grain,
                            const std::function<void(std::int64_t)>& body) {
  for_each_chunk(begin, end, grain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) body(i);
  });
}

}  // namespace ff
