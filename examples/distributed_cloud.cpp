// The distributed/cloud deployment (paper §IV-B): a virtual cluster of
// multicore hosts, each running a farm of simulation engines, streaming
// serialized results to a master that aligns and analyses on-line. Verifies
// that results are identical to the shared-memory run and reports the
// network traffic, then models the same campaign on the paper's EC2 setup
// with the DES performance models.
//
//   ./distributed_cloud [--hosts 4] [--workers-per-host 2] [--trajectories 32]
#include <cstdio>

#include "core/cwcsim.hpp"
#include "des/des.hpp"
#include "dist/dist.hpp"
#include "models/models.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const util::cli cli(argc, argv);

  const auto model = models::make_neurospora_cwc({});

  cwcsim::sim_config cfg;
  cfg.num_trajectories =
      static_cast<std::uint64_t>(cli.get_int("trajectories", 32));
  cfg.t_end = cli.get_double("t-end", 40.0);
  cfg.sample_period = 0.5;
  cfg.quantum = 5.0;
  cfg.stat_engines = 2;
  cfg.window_size = 8;
  cfg.window_slide = 8;
  cfg.kmeans_k = 0;

  // The unified streaming facade: the same run_builder program would run
  // multicore or GPU by swapping this one backend value.
  cwcsim::distributed be;
  be.num_hosts = static_cast<unsigned>(cli.get_int("hosts", 4));
  be.workers_per_host = static_cast<unsigned>(cli.get_int("workers-per-host", 2));
  be.network.latency_s = 120e-6;  // EC2-like
  be.network.bytes_per_s = 90e6;

  std::printf("virtual cluster: %u hosts x %u engines, EC2-like network\n",
              be.num_hosts, be.workers_per_host);
  auto session =
      cwcsim::run_builder().model(model).config(cfg).backend(be).open();
  std::size_t windows_streamed = 0;
  session.on_window(
      [&](const cwcsim::window_summary&) { ++windows_streamed; });
  const auto dr = session.wait();
  std::printf(
      "  wall %.2f s, %zu messages, %.1f kB serialized, %zu windows "
      "streamed on-line\n",
      dr.result.wall_seconds, dr.network->messages, dr.network->bytes / 1e3,
      windows_streamed);

  cfg.sim_workers = be.num_hosts * be.workers_per_host;
  const auto mc = cwcsim::simulate(model, cfg);
  bool identical = mc.windows.size() == dr.result.windows.size();
  if (identical) {
    for (std::size_t i = 0; i < mc.windows.size() && identical; ++i)
      for (std::size_t c = 0; c < mc.windows[i].cuts.size() && identical; ++c)
        identical = mc.windows[i].cuts[c].moments[0].mean() ==
                    dr.result.windows[i].cuts[c].moments[0].mean();
  }
  std::printf("  results identical to shared-memory run: %s\n",
              identical ? "yes" : "NO");

  // ---- modeled performance on the paper's cloud -------------------------
  cwcsim::model_ref mr;
  mr.tree = &model;
  const auto cal = des::calibrate(mr, cfg);
  const auto w = des::capture_workload(mr, cfg);

  des::cluster_params cp;
  cp.master = des::platforms::ec2_quadcore_vm();
  cp.network = des::platforms::ec2_net();
  cp.sim_workers_per_host = 4;
  cp.stat_engines = 4;

  std::printf("\nmodeled on Amazon EC2 quad-core VMs (DES):\n");
  des::farm_params seq;
  seq.sim_workers = 1;
  seq.stat_engines = 4;
  const double t1 =
      des::simulate_multicore(w, cal, des::platforms::ec2_quadcore_vm(), seq)
          .makespan_s;
  for (unsigned hosts : {1u, 2u, 4u, 8u}) {
    cp.hosts.assign(hosts, des::platforms::ec2_quadcore_vm());
    const auto o = des::simulate_cluster(w, cal, cp);
    std::printf("  %u VMs (%2u vcores): modeled %7.2f s  speedup %5.2f\n", hosts,
                hosts * 4, o.makespan_s, t1 / o.makespan_s);
  }
  return 0;
}
