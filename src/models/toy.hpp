// Classic small stochastic models used throughout tests, examples, and
// engine micro-benchmarks. Each returns a flat reaction network; the CWC
// compartment-demo model exercises compartment creation/growth/dissolution.
#pragma once

#include "cwc/cwc.hpp"

namespace models {

/// Birth-death: 0 -> X @ lambda, X -> 0 @ mu*X.
/// Stationary distribution is Poisson(lambda/mu) — analytic ground truth
/// for the statistical test suite.
struct birth_death_params {
  double lambda = 50.0;
  double mu = 1.0;
  std::uint64_t x0 = 0;
};
cwc::reaction_network make_birth_death(const birth_death_params& p = {});

/// Lotka-Volterra predator-prey: heavily unbalanced trajectory runtimes
/// (extinctions vs long oscillations) — the load-imbalance workload.
struct lotka_volterra_params {
  double birth = 1.0;        ///< X -> 2X
  double predation = 0.005;  ///< X + Y -> 2Y
  double death = 0.6;        ///< Y -> 0
  std::uint64_t prey0 = 200;
  std::uint64_t pred0 = 80;
};
cwc::reaction_network make_lotka_volterra(const lotka_volterra_params& p = {});

/// Schlogl bistable system: trajectories settle near one of two macroscopic
/// states — the k-means-over-trajectories workload.
struct schlogl_params {
  double c1 = 3e-2;   ///< 2X -> 3X (A folded in)
  double c2 = 1e-4;   ///< 3X -> 2X
  double c3 = 200.0;  ///< 0 -> X (B folded in)
  double c4 = 3.5;    ///< X -> 0
  std::uint64_t x0 = 250;
};
cwc::reaction_network make_schlogl(const schlogl_params& p = {});

/// Michaelis-Menten enzyme kinetics, full elementary form:
/// E + S <-> ES -> E + P.
struct michaelis_menten_params {
  double kf = 0.01;
  double kr = 1.0;
  double kcat = 1.0;
  std::uint64_t e0 = 100;
  std::uint64_t s0 = 1000;
};
cwc::reaction_network make_michaelis_menten(const michaelis_menten_params& p = {});

/// SIR epidemic: S + I -> 2I @ beta/N, I -> R @ gamma.
struct sir_params {
  double beta = 0.3;
  double gamma = 0.1;
  std::uint64_t s0 = 990;
  std::uint64_t i0 = 10;
};
cwc::reaction_network make_sir(const sir_params& p = {});

/// CWC-specific demo exercising the full compartment semantics:
///   top:      2*A -> (vesicle: m | B)         @ k_form   (creation)
///   vesicle:  B -> 2*B                        @ k_grow   (growth inside)
///   top:      (vesicle: m | 4*B) -> 4*C + !dissolve @ k_burst (dissolution)
/// Observables: A, B, C, plus B restricted to vesicles.
struct compartment_demo_params {
  double k_form = 0.01;
  double k_grow = 1.0;
  double k_burst = 0.5;
  std::uint64_t a0 = 100;
};
cwc::model make_compartment_demo(const compartment_demo_params& p = {});

}  // namespace models
