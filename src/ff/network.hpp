// The node graph and its threaded executor.
//
// A network owns nodes and channels. Patterns (pipeline, farm) are builders
// that add nodes/edges to a network and expose their ingress/egress nodes so
// patterns compose (a farm can be a pipeline stage, etc.). run() spawns one
// thread per node; wait() joins them and rethrows the first exception that
// escaped a node, so failures in worker threads are not silently lost.
#pragma once

#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ff/channel.hpp"
#include "ff/node.hpp"

namespace ff {

/// Default capacity for bounded inter-node channels.
inline constexpr std::size_t default_channel_capacity = 512;

class network {
 public:
  network() = default;
  network(const network&) = delete;
  network& operator=(const network&) = delete;
  ~network();

  /// Transfer ownership of a node into the network; returns a non-owning
  /// handle valid for the network's lifetime.
  node* add(std::unique_ptr<node> n);

  /// Convenience: construct the node in place.
  template <typename N, typename... Args>
  N* emplace(Args&&... args) {
    auto owned = std::make_unique<N>(std::forward<Args>(args)...);
    N* raw = owned.get();
    add(std::move(owned));
    return raw;
  }

  /// Connect `from` -> `to` with a channel of the given capacity
  /// (0 = unbounded). Feedback edges are excluded from EOS accounting.
  channel* connect(node* from, node* to, std::size_t capacity = default_channel_capacity,
                   edge_kind kind = edge_kind::normal);

  /// Spawn one thread per node. May be called once.
  void run();

  /// Join all node threads; rethrows the first captured node exception.
  void wait();

  /// run() + wait().
  void run_and_wait() {
    run();
    wait();
  }

  std::size_t num_nodes() const noexcept { return nodes_.size(); }

 private:
  friend class node;

  void record_exception(std::exception_ptr e);

  std::vector<std::unique_ptr<node>> nodes_;
  std::vector<std::unique_ptr<channel>> channels_;
  std::vector<std::thread> threads_;
  bool started_ = false;

  std::mutex err_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace ff
