// Compile the model once: an immutable per-model artifact shared by every
// engine instance and every backend.
//
// A simulation campaign farms out 10⁴–10⁵ trajectories of *one* model, yet
// the static lookup structure an engine needs — which rules apply in which
// compartment type, the rule→rule dependency index that drives incremental
// propensity maintenance, the observable evaluation plans — is a pure
// function of the model. compiled_model hoists all of it out of the
// per-trajectory constructor: the session/backend layer compiles once
// before the farm spins up, every engine constructs from the shared
// artifact, the distributed runtime ships the model description once per
// run over the wire (dist/model_codec.hpp) and recompiles on arrival, and
// the DES/SIMT workload capture derives its description from the same
// artifact.
//
// Sharing and ownership rules:
//   - compiled_model is immutable after compile() returns; concurrent
//     engines on any number of threads may read one artifact without
//     synchronisation.
//   - Artifacts are always std::shared_ptr<const compiled_model>-held;
//     engines keep the pointer alive, so the artifact outlives every
//     engine constructed from it.
//   - The const-reference compile() overloads *view* the caller's model,
//     which must outlive the artifact (the same lifetime contract the
//     engines always had); the rvalue overloads take ownership (the
//     wire-decode path).
//
// The dependency-index construction lives here — one audited
// implementation — instead of being duplicated between the tree engine
// (formerly gillespie.cpp) and the flat next-reaction engine (formerly
// next_reaction.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cwc/model.hpp"
#include "cwc/rate_tape.hpp"
#include "cwc/reaction_network.hpp"

namespace cwc {

class compiled_model {
 public:
  /// Compile a CWC term model the caller keeps alive.
  static std::shared_ptr<const compiled_model> compile(const model& m);
  /// Compile a CWC term model, taking ownership (wire-decoded models).
  static std::shared_ptr<const compiled_model> compile(model&& m);
  /// Compile a flat reaction network the caller keeps alive.
  static std::shared_ptr<const compiled_model> compile(const reaction_network& n);
  /// Compile a flat reaction network, taking ownership.
  static std::shared_ptr<const compiled_model> compile(reaction_network&& n);

  /// One overlay override: the named rule/reaction's mass-action constant
  /// becomes `value`.
  using rate_override = std::pair<std::string, double>;

  /// A rate-constant overlay of `base`: a cheap per-sweep-cell artifact that
  /// SHARES base's structure — the dependency index, per-type rule lists,
  /// redo lists, write flags, and observable plans are never recopied or
  /// recomputed (and the compile counter does not tick) — while the rule
  /// table, the rate-tape constant-scale operands, and (for flat networks)
  /// the reaction table carry the patched constants. Engines constructed
  /// from the overlay replay exactly the trajectory a full recompile of the
  /// patched model would produce, bit for bit.
  ///
  /// Throws overlay_error when a named rule does not exist or its law is
  /// not mass-action (rate_law::with_constant). Overlaying an overlay is
  /// allowed; tables keep routing to the structural root.
  static std::shared_ptr<const compiled_model> overlay(
      std::shared_ptr<const compiled_model> base,
      const std::vector<rate_override>& overrides);

  /// True for artifacts produced by overlay() rather than compile().
  bool is_overlay() const noexcept { return base_ != nullptr; }

  /// Number of full compile() passes since process start — the proof knob
  /// for "one compile per sweep campaign": overlays never increment it.
  static std::uint64_t compile_count() noexcept {
    return compiles_.load(std::memory_order_relaxed);
  }

  compiled_model(const compiled_model&) = delete;
  compiled_model& operator=(const compiled_model&) = delete;

  /// The compiled tree model, or nullptr for a flat artifact.
  const model* tree() const noexcept { return tree_; }
  /// The compiled flat network, or nullptr for a tree artifact.
  const reaction_network* flat() const noexcept { return flat_; }
  bool is_tree() const noexcept { return tree_ != nullptr; }

  std::size_t num_rules() const noexcept;
  std::size_t num_species() const noexcept;
  /// Values per sample: tree observables, or every species of a flat net.
  std::size_t num_observables() const noexcept;

  // ---- tree tables (valid when is_tree()) ---------------------------
  // Accessors route through tables_ — `this` for compiled artifacts, the
  // structural root for overlays — so an overlay shares the root's
  // dependency index and plans without copying a single table.

  /// The rule table of a tree model, declaration order: the root's rules,
  /// or this overlay's patched copies. Engines must read rules (and thus
  /// rate laws) through HERE, never via tree()->rules(), or overlays would
  /// silently evaluate the base constants.
  const std::vector<rule>& rules() const noexcept {
    return overlay_rules_.has_value() ? *overlay_rules_ : tree_->rules();
  }

  /// Rules applicable inside a compartment of type `t`, declaration order.
  const std::vector<std::uint32_t>& rules_for_type(comp_type_id t) const {
    return tables_->rules_for_type_[t];
  }
  /// [rule] -> slot index inside a type-`t` match block, or -1.
  const std::vector<std::int32_t>& slot_of(comp_type_id t) const {
    return tables_->slot_of_[t];
  }
  /// After rule `j` fires: rules to re-enumerate in the host block, the
  /// bound child's block, and the host's parent block.
  const std::vector<std::uint32_t>& redo_host(std::uint32_t j) const {
    return tables_->redo_host_[j];
  }
  const std::vector<std::uint32_t>& redo_child(std::uint32_t j) const {
    return tables_->redo_child_[j];
  }
  const std::vector<std::uint32_t>& redo_parent(std::uint32_t j) const {
    return tables_->redo_parent_[j];
  }
  /// Rule `j` writes the host content / the kept bound child's content.
  bool writes_host(std::uint32_t j) const {
    return tables_->writes_host_[j] != 0;
  }
  bool writes_child(std::uint32_t j) const {
    return tables_->writes_child_[j] != 0;
  }

  /// One observable reduced to indices: no name or std::optional traffic
  /// on the sampling path. Public so the batch engine can evaluate the same
  /// plans over its SoA state with the same exact-integer accumulation.
  struct observable_plan {
    species_id sp = 0;
    comp_type_id scope = 0;
    bool scoped = false;
  };

  /// The compiled observable plans of a tree model, in observable order.
  const std::vector<observable_plan>& observable_plans() const noexcept {
    return tables_->observables_;
  }

  /// The rate-law bytecode tape of a tree model (one program per rule,
  /// declaration order) — the batch engine's dispatch-free propensity
  /// evaluator. Empty for flat artifacts.
  const rate_tape& tape() const noexcept { return tape_; }

  /// Evaluate every observable of a tree model in ONE pre-order walk
  /// (`model::observe_all` walks once per observable). `scratch` is the
  /// caller's reusable integer accumulator — counts are summed exactly in
  /// std::uint64_t, so the result is bit-identical to the per-observable
  /// walks regardless of traversal order. No allocation once `scratch`
  /// and `out` have warmed-up capacity.
  void observe_all(const term& state, std::vector<std::uint64_t>& scratch,
                   std::vector<double>& out) const;

  // ---- flat tables (valid when !is_tree()) --------------------------
  /// Gibson–Bruck dependency list: reactions (excluding `j` itself) whose
  /// propensity may change after reaction `j` fires, ascending index.
  const std::vector<std::uint32_t>& depends(std::size_t j) const {
    return tables_->depends_[j];
  }

 private:
  compiled_model() = default;

  void build_tree_tables();
  void build_flat_tables();
  static std::shared_ptr<const compiled_model> finish(
      std::shared_ptr<compiled_model> cm);

  const model* tree_ = nullptr;
  const reaction_network* flat_ = nullptr;
  std::optional<model> owned_tree_;             ///< wire-decode ownership
  std::optional<reaction_network> owned_flat_;  ///< wire-decode / flat-overlay ownership

  /// Where the shared static tables live: `this` for compiled artifacts,
  /// the structural ROOT (never an intermediate overlay) for overlays.
  const compiled_model* tables_ = this;
  /// Keeps the root alive for overlays; nullptr for compiled artifacts.
  std::shared_ptr<const compiled_model> base_;
  /// Patched rule copies of a tree overlay (absent on compiled artifacts).
  std::optional<std::vector<rule>> overlay_rules_;

  static std::atomic<std::uint64_t> compiles_;  ///< full-compile counter

  // Tree tables (see accessor docs).
  std::vector<std::vector<std::uint32_t>> rules_for_type_;
  std::vector<std::vector<std::int32_t>> slot_of_;
  std::vector<std::vector<std::uint32_t>> redo_host_;
  std::vector<std::vector<std::uint32_t>> redo_child_;
  std::vector<std::vector<std::uint32_t>> redo_parent_;
  std::vector<std::uint8_t> writes_host_;
  std::vector<std::uint8_t> writes_child_;
  std::vector<observable_plan> observables_;
  rate_tape tape_;

  // Flat tables.
  std::vector<std::vector<std::uint32_t>> depends_;
};

}  // namespace cwc
