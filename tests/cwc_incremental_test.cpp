// Lockstep golden tests for the incremental match cache: cwc::engine in
// engine_mode::incremental (cached per-compartment match blocks, dependency
// driven refresh) must produce bit-for-bit the sample path of
// engine_mode::reference (naive full re-collect every step) on every model
// shape — pure content rewrites (Neurospora), compartment creation/dissolve
// (compartment demo), and a churn-heavy model exercising creation, nested
// compartments, transport, dissolution with grandchild reparenting, subtree
// removal, any-context rules, and non-mass-action laws. Also proves the
// steady-state step allocates nothing.
#include <gtest/gtest.h>

#include "counting_allocator.hpp"
#include "cwc/cwc.hpp"
#include "models/models.hpp"

namespace {

// A model heavy on structural rewrites: every fate (keep/dissolve/remove),
// compartment creation at two nesting levels, transport into a kept child,
// an any-context rule, and MM kinetics (conservative dependencies).
cwc::model make_churn_model() {
  cwc::model m;
  const auto A = m.declare_species("A");
  const auto B = m.declare_species("B");
  const auto mem = m.declare_species("m");
  const auto pod = m.declare_compartment_type("pod");

  auto root = std::make_unique<cwc::term>(cwc::top_compartment);
  root->content().add(A, 40);
  auto seed_pod = std::make_unique<cwc::compartment>(pod);
  seed_pod->wrap().add(mem);
  seed_pod->content().add(B, 2);
  root->add_child(std::move(seed_pod));
  m.set_initial(std::move(root));

  {  // top: 2A -> (pod: m | B)
    cwc::rule r("make", cwc::top_compartment, cwc::rate_law::mass_action(0.4));
    r.consume(A, 2);
    cwc::comp_product p;
    p.type = pod;
    p.wrap.add(mem);
    p.content.add(B);
    r.create_compartment(std::move(p));
    m.add_rule(std::move(r));
  }
  {  // pod: B -> 2B
    cwc::rule r("grow", pod, cwc::rate_law::mass_action(0.9));
    r.consume(B);
    r.produce(B, 2);
    m.add_rule(std::move(r));
  }
  {  // pod: 2B -> (pod: m | B)  — nested pod, dissolved pods reparent these
    cwc::rule r("bud", pod, cwc::rate_law::mass_action(0.25));
    r.consume(B, 2);
    cwc::comp_product p;
    p.type = pod;
    p.wrap.add(mem);
    p.content.add(B);
    r.create_compartment(std::move(p));
    m.add_rule(std::move(r));
  }
  {  // top: A + (pod:|) -> (pod:| A)  — transport into a kept child
    cwc::rule r("xport", cwc::top_compartment, cwc::rate_law::mass_action(0.2));
    r.consume(A);
    r.match_child(cwc::comp_pattern{pod, {}, {}});
    r.produce_in_child(A);
    m.add_rule(std::move(r));
  }
  {  // top: (pod: m | 3B) -> 2A, rest released (grandchildren float up)
    cwc::rule r("pop", cwc::top_compartment, cwc::rate_law::mass_action(0.5));
    cwc::comp_pattern pat;
    pat.type = pod;
    pat.wrap_req.add(mem);
    pat.content_req.add(B, 3);
    r.match_child(std::move(pat));
    r.produce(A, 2);
    r.set_child_fate(cwc::child_fate::dissolve);
    m.add_rule(std::move(r));
  }
  {  // top: (pod: | 5B) -> ∅  — whole subtree destroyed
    cwc::rule r("cull", cwc::top_compartment, cwc::rate_law::mass_action(0.15));
    cwc::comp_pattern pat;
    pat.type = pod;
    pat.content_req.add(B, 5);
    r.match_child(std::move(pat));
    r.set_child_fate(cwc::child_fate::remove);
    m.add_rule(std::move(r));
  }
  {  // any: B -> ∅  — any-context rule, fires in top and in every pod
    cwc::rule r("decay", cwc::any_compartment, cwc::rate_law::mass_action(0.05));
    r.consume(B);
    m.add_rule(std::move(r));
  }
  {  // top: A -> B  @ MM(A)  — non-mass-action, conservative dependencies
    cwc::rule r("mm", cwc::top_compartment,
                cwc::rate_law::michaelis_menten(1.5, 8.0, A));
    r.consume(A);
    r.produce(B);
    m.add_rule(std::move(r));
  }

  m.add_observable("A", A, std::nullopt);
  m.add_observable("B", B, std::nullopt);
  m.add_observable("B-in-pods", B, pod);
  return m;
}

void lockstep_steps(const cwc::model& m, std::uint64_t seed, std::uint64_t id,
                    int steps) {
  cwc::engine inc(m, seed, id, cwc::engine_mode::incremental);
  cwc::engine ref(m, seed, id, cwc::engine_mode::reference);
  for (int i = 0; i < steps; ++i) {
    const bool a = inc.step();
    const bool b = ref.step();
    ASSERT_EQ(a, b) << "step " << i;
    ASSERT_EQ(inc.time(), ref.time()) << "time diverged at step " << i;
    ASSERT_EQ(inc.stalled(), ref.stalled());
    if (i % 16 == 0) {
      ASSERT_TRUE(inc.state().equals(ref.state())) << "state at step " << i;
      ASSERT_TRUE(inc.check_match_cache()) << "cache at step " << i;
      // Reference mode re-collects eagerly after each firing, so its cache
      // (including the pre-order view after structural rewrites) must be
      // consistent too.
      ASSERT_TRUE(ref.check_match_cache()) << "reference cache at step " << i;
    }
    if (!a) break;
  }
  EXPECT_EQ(inc.steps(), ref.steps());
  EXPECT_TRUE(inc.state().equals(ref.state()));
  EXPECT_TRUE(inc.check_match_cache());
}

TEST(IncrementalEngine, LockstepNeurospora) {
  lockstep_steps(models::make_neurospora_cwc({}), 17, 3, 400);
}

TEST(IncrementalEngine, LockstepCompartmentDemo) {
  for (std::uint64_t id = 0; id < 4; ++id)
    lockstep_steps(models::make_compartment_demo({}), 23, id, 300);
}

TEST(IncrementalEngine, LockstepChurnModel) {
  for (std::uint64_t id = 0; id < 6; ++id)
    lockstep_steps(make_churn_model(), 31, id, 250);
}

void expect_same_samples(const std::vector<cwc::trajectory_sample>& a,
                         const std::vector<cwc::trajectory_sample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time) << "sample " << i;
    EXPECT_EQ(a[i].values, b[i].values) << "sample " << i;
  }
}

// Bit-exact sample paths across run_to quantum boundaries: the incremental
// engine driven in small quanta against the reference collector run in one
// sweep (and vice versa).
TEST(IncrementalEngine, QuantumBoundariesMatchReference) {
  // The churn model is step-bounded elsewhere (its autocatalytic growth makes
  // long horizons explode); here bounded models cover content-only rewrites
  // (Neurospora) and structural ones (compartment demo) across quanta.
  for (const bool tree_model : {true, false}) {
    const cwc::model m = tree_model ? models::make_neurospora_cwc({})
                                    : models::make_compartment_demo({});

    cwc::engine ref(m, 7, 1, cwc::engine_mode::reference);
    std::vector<cwc::trajectory_sample> rs;
    ref.run_to(20.0, 0.5, rs);

    cwc::engine inc(m, 7, 1, cwc::engine_mode::incremental);
    std::vector<cwc::trajectory_sample> is;
    double t = 0.0;
    while (t < 20.0) {
      t = std::min(t + 0.7, 20.0);
      inc.run_to(t, 0.5, is);
      ASSERT_TRUE(inc.check_match_cache()) << "after quantum to t=" << t;
    }
    expect_same_samples(is, rs);
    EXPECT_EQ(inc.steps(), ref.steps());
    EXPECT_TRUE(inc.state().equals(ref.state()));
  }
}

// A model that stalls (2A -> B exhausts its reactant pairs): both modes must
// stall at the same step and keep emitting the frozen sample grid.
TEST(IncrementalEngine, StallMatchesReferenceAcrossQuanta) {
  cwc::model m;
  m.set_initial(cwc::parse_term(m, "7*A"));
  m.add_rule(cwc::parse_rule(m, "fuse", "top: 2*A -> B @ 1.0"));
  m.add_observable("A", m.species().id("A"));
  m.add_observable("B", m.species().id("B"));

  cwc::engine ref(m, 5, 0, cwc::engine_mode::reference);
  std::vector<cwc::trajectory_sample> rs;
  ref.run_to(50.0, 1.0, rs);
  ASSERT_TRUE(ref.stalled());

  cwc::engine inc(m, 5, 0, cwc::engine_mode::incremental);
  std::vector<cwc::trajectory_sample> is;
  for (double t = 5.0; t <= 50.0 + 1e-9; t += 5.0) inc.run_to(t, 1.0, is);
  EXPECT_TRUE(inc.stalled());
  expect_same_samples(is, rs);
  ASSERT_EQ(is.size(), 51u);  // full grid emitted despite the stall
}

// The cached-block maintenance must leave the steady-state SSA step
// allocation-free: after warm-up (match lists and multiset universes at
// capacity), a long run of steps may not allocate at all.
TEST(IncrementalEngine, SteadyStateStepIsAllocationFree) {
  const auto m = models::make_neurospora_cwc({});
  cwc::engine eng(m, 123, 0);
  for (int i = 0; i < 300; ++i) ASSERT_TRUE(eng.step());

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  bool alive = true;
  for (int i = 0; i < 1000 && alive; ++i) alive = eng.step();
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);

  ASSERT_TRUE(alive);
  EXPECT_EQ(after - before, 0u)
      << "steady-state steps allocated " << (after - before) << " times";
}

}  // namespace
