// Tests for the on-line statistics library: Welford moments, P² quantiles,
// k-means, period detection, cuts and sliding windows.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "stats/stats.hpp"
#include "util/rng.hpp"

namespace {

TEST(Welford, MatchesTwoPassOnRandomData) {
  util::rng_stream rng(1, 1);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = 10.0 + 3.0 * rng.next_normal();

  stats::welford w;
  for (double x : xs) w.add(x);

  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());

  EXPECT_NEAR(w.mean(), mean, 1e-9);
  EXPECT_NEAR(w.variance(), var, 1e-9);
  EXPECT_EQ(w.count(), xs.size());
  EXPECT_DOUBLE_EQ(w.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(w.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(Welford, MergeEqualsSequential) {
  util::rng_stream rng(2, 2);
  stats::welford all, a, b;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.next_normal() * (i % 7 + 1);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(Welford, EmptyAndSingleton) {
  stats::welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  w.add(5.0);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.sample_variance(), 0.0);
}

class p2_param_test : public ::testing::TestWithParam<double> {};

TEST_P(p2_param_test, TracksQuantileOfNormalStream) {
  const double q = GetParam();
  util::rng_stream rng(3, 3);
  stats::p2_quantile est(q);
  std::vector<double> xs(20000);
  for (auto& x : xs) {
    x = rng.next_normal();
    est.add(x);
  }
  std::sort(xs.begin(), xs.end());
  const double exact = xs[static_cast<std::size_t>(q * (xs.size() - 1))];
  EXPECT_NEAR(est.value(), exact, 0.06) << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Quantiles, p2_param_test,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.99));

TEST(P2Quantile, ExactForSmallSamples) {
  stats::p2_quantile est(0.5);
  est.add(3.0);
  est.add(1.0);
  est.add(2.0);
  EXPECT_DOUBLE_EQ(est.value(), 2.0);  // exact median of {1,2,3}
}

TEST(P2Quantile, RejectsDegenerateQuantile) {
  EXPECT_THROW(stats::p2_quantile(0.0), util::precondition_error);
  EXPECT_THROW(stats::p2_quantile(1.0), util::precondition_error);
}

TEST(Kmeans, SeparatesTwoObviousClusters) {
  std::vector<std::vector<double>> pts;
  util::rng_stream rng(4, 4);
  for (int i = 0; i < 50; ++i)
    pts.push_back({0.0 + rng.next_normal() * 0.1, 0.0 + rng.next_normal() * 0.1});
  for (int i = 0; i < 50; ++i)
    pts.push_back({10.0 + rng.next_normal() * 0.1, 10.0 + rng.next_normal() * 0.1});

  const auto res = stats::kmeans(pts, 2, /*seed=*/9);
  ASSERT_EQ(res.centroids.size(), 2u);
  // One centroid near (0,0), the other near (10,10).
  const bool zero_first = res.centroids[0][0] < 5.0;
  const auto& lo = res.centroids[zero_first ? 0 : 1];
  const auto& hi = res.centroids[zero_first ? 1 : 0];
  EXPECT_NEAR(lo[0], 0.0, 0.5);
  EXPECT_NEAR(hi[0], 10.0, 0.5);
  EXPECT_EQ(res.sizes[0] + res.sizes[1], 100u);
  EXPECT_EQ(res.sizes[0], 50u);
  // Every point assigned to its generating cluster.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(res.assignment[i], res.assignment[0]);
  for (int i = 50; i < 100; ++i) EXPECT_EQ(res.assignment[i], res.assignment[50]);
}

TEST(Kmeans, DeterministicForSeed) {
  std::vector<std::vector<double>> pts;
  util::rng_stream rng(5, 5);
  for (int i = 0; i < 200; ++i)
    pts.push_back({rng.next_uniform() * 10, rng.next_uniform() * 10});
  const auto a = stats::kmeans(pts, 3, 42);
  const auto b = stats::kmeans(pts, 3, 42);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.inertia, b.inertia);
}

TEST(Kmeans, ClampsKAndHandlesEmpty) {
  EXPECT_TRUE(stats::kmeans({}, 3).centroids.empty());
  std::vector<std::vector<double>> two = {{1.0}, {2.0}};
  const auto res = stats::kmeans(two, 5, 1);
  EXPECT_EQ(res.centroids.size(), 2u);
}

TEST(Period, FindPeaksSimple) {
  std::vector<double> y = {0, 1, 0, 2, 0, 3, 0};
  const auto peaks = stats::find_peaks(y);
  EXPECT_EQ(peaks, (std::vector<std::size_t>{1, 3, 5}));
}

TEST(Period, ProminenceFiltersRipples) {
  std::vector<double> y = {0, 10, 9.8, 10.05, 0, 10, 0};
  const auto all = stats::find_peaks(y, 0.0);
  const auto strong = stats::find_peaks(y, 1.0);
  EXPECT_GT(all.size(), strong.size());
  ASSERT_EQ(strong.size(), 2u);
}

TEST(Period, LocalPeriodsOfSinusoid) {
  std::vector<double> t, y;
  const double period = 21.5;
  for (int i = 0; i < 2000; ++i) {
    t.push_back(i * 0.1);
    y.push_back(std::sin(2 * M_PI * t.back() / period));
  }
  const auto periods = stats::local_periods(t, y, 0.5);
  ASSERT_GE(periods.size(), 5u);
  for (double p : periods) EXPECT_NEAR(p, period, 0.2);
}

TEST(Period, MovingAverage) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  const auto ma = stats::moving_average(x, 3);
  ASSERT_EQ(ma.size(), 5u);
  EXPECT_DOUBLE_EQ(ma[0], 1.0);
  EXPECT_DOUBLE_EQ(ma[1], 1.5);
  EXPECT_DOUBLE_EQ(ma[2], 2.0);
  EXPECT_DOUBLE_EQ(ma[3], 3.0);
  EXPECT_DOUBLE_EQ(ma[4], 4.0);
}

TEST(Period, AutocorrelationPeriodOfSinusoid) {
  std::vector<double> y;
  for (int i = 0; i < 1000; ++i) y.push_back(std::sin(2 * M_PI * i / 50.0));
  const double lag = stats::autocorrelation_period(y, 200);
  EXPECT_NEAR(lag, 50.0, 1.0);
  const auto ac = stats::autocorrelation(y, 10);
  EXPECT_DOUBLE_EQ(ac[0], 1.0);
}

TEST(Cut, SummarizeComputesMomentsMediansClusters) {
  stats::trajectory_cut cut;
  cut.sample_index = 3;
  cut.time = 1.5;
  cut.values = {{1.0, 100.0}, {2.0, 200.0}, {3.0, 300.0}, {4.0, 400.0}};
  const auto s = stats::summarize_cut(cut, 2, 7);
  ASSERT_EQ(s.moments.size(), 2u);
  EXPECT_DOUBLE_EQ(s.moments[0].mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.moments[1].mean(), 250.0);
  EXPECT_DOUBLE_EQ(s.medians[0], 3.0);  // upper median
  EXPECT_EQ(s.clusters.centroids.size(), 2u);
  EXPECT_EQ(s.sample_index, 3u);
}

TEST(Cut, SummarizeRejectsRaggedCut) {
  stats::trajectory_cut cut;
  cut.values = {{1.0, 2.0}, {1.0}};
  EXPECT_THROW(stats::summarize_cut(cut, 0), util::precondition_error);
}

struct window_case {
  std::size_t size;
  std::size_t slide;
  std::size_t n_cuts;
};

class window_param_test : public ::testing::TestWithParam<window_case> {};

TEST_P(window_param_test, WindowsTileTheStreamCorrectly) {
  const auto [size, slide, n] = GetParam();
  stats::sliding_window_builder b(size, slide);
  std::vector<stats::trajectory_window> windows;
  for (std::size_t k = 0; k < n; ++k) {
    stats::trajectory_cut c;
    c.sample_index = k;
    c.time = static_cast<double>(k);
    for (auto& w : b.push(std::move(c))) windows.push_back(std::move(w));
  }
  for (auto& w : b.flush()) windows.push_back(std::move(w));

  // Full windows first: each starts at i*slide and has `size` consecutive cuts.
  std::size_t full = 0;
  for (const auto& w : windows) {
    if (w.cuts.size() == size) {
      EXPECT_EQ(w.first_sample, full * slide);
      for (std::size_t i = 0; i < w.cuts.size(); ++i)
        EXPECT_EQ(w.cuts[i].sample_index, w.first_sample + i);
      ++full;
    }
  }
  const std::size_t expect_full = n >= size ? (n - size) / slide + 1 : 0;
  EXPECT_EQ(full, expect_full);

  // Every cut index must appear in at least one window when slide <= size.
  std::vector<bool> covered(n, false);
  for (const auto& w : windows)
    for (const auto& c : w.cuts)
      if (c.sample_index < n) covered[c.sample_index] = true;
  for (std::size_t k = 0; k < n; ++k) EXPECT_TRUE(covered[k]) << "cut " << k;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, window_param_test,
    ::testing::Values(window_case{1, 1, 10}, window_case{4, 4, 16},
                      window_case{4, 4, 18}, window_case{8, 2, 40},
                      window_case{16, 1, 33}, window_case{5, 3, 22}));

TEST(Window, RejectsBadShapesAndGaps) {
  EXPECT_THROW(stats::sliding_window_builder(0, 1), util::precondition_error);
  EXPECT_THROW(stats::sliding_window_builder(4, 5), util::precondition_error);
  stats::sliding_window_builder b(2, 2);
  stats::trajectory_cut c0;
  c0.sample_index = 0;
  b.push(std::move(c0));
  stats::trajectory_cut c2;
  c2.sample_index = 2;  // gap!
  EXPECT_THROW(b.push(std::move(c2)), util::precondition_error);
}

}  // namespace
