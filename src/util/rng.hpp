// Counter-based, splittable random number generation for reproducible
// parallel Monte Carlo.
//
// Every trajectory owns an independent stream keyed by (seed, stream id), so
// simulation results are bit-for-bit identical regardless of how trajectories
// are scheduled across workers, hosts, or (simulated) GPU lanes. This is the
// property the multicore == distributed == SIMT equivalence tests rely on.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace util {

/// SplitMix64 — tiny, fast, full-period 64-bit mixer. Used for seeding and
/// as the stream-splitting function (Steele et al., OOPSLA'14).
class splitmix64 {
 public:
  using result_type = std::uint64_t;

  explicit splitmix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the workhorse generator.
/// Seeded through SplitMix64 as its authors recommend.
class xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit xoshiro256ss(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    splitmix64 sm(seed);
    for (auto& s : s_) s = sm();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Skip ahead 2^128 draws (the generator's canonical jump polynomial):
  /// after jump(), the state is what 2^128 calls of operator() would have
  /// produced. Partitions one stream into non-overlapping substreams.
  void jump() noexcept {
    static constexpr std::uint64_t kJump[] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (const std::uint64_t word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (word & (1ULL << b)) {
          s0 ^= s_[0];
          s1 ^= s_[1];
          s2 ^= s_[2];
          s3 ^= s_[3];
        }
        (void)(*this)();
      }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// An independent random stream identified by (global seed, stream id).
/// Trajectory `i` of a simulation run always draws from stream
/// (seed, i) — independent of which worker executes it.
class rng_stream {
 public:
  rng_stream() noexcept : rng_(0) {}

  rng_stream(std::uint64_t seed, std::uint64_t stream_id) noexcept
      : key_(mix(seed, stream_id)), rng_(key_) {}

  /// Counter-based stream splitting: derive child stream `stream_id` of this
  /// stream. The child is a pure function of (construction key, stream_id) —
  /// independent of how many values the parent has already drawn — so
  /// split(i) is reproducible no matter when or where it is called, and
  /// rng_stream(seed, a).split(b) == rng_stream(seed, a).split(b) always.
  /// A derivation utility for hierarchical stream partitioning (e.g. a
  /// campaign stream splitting per-replica substreams). NB: batch-engine
  /// lanes do NOT use split(): lane i must own the exact stream
  /// rng_stream(seed, first_id + i) to replay its scalar engine
  /// bit-for-bit.
  rng_stream split(std::uint64_t stream_id) const noexcept {
    rng_stream child;
    child.key_ = mix(key_, stream_id);
    child.rng_ = xoshiro256ss(child.key_);
    return child;
  }

  /// Skip this stream ahead 2^128 draws (see xoshiro256ss::jump): carves
  /// non-overlapping substreams out of one stream when an id-keyed split is
  /// not available. Discards any cached normal spare.
  void jump() noexcept {
    rng_.jump();
    have_spare_ = false;
  }

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64() noexcept { return rng_(); }

  /// Uniform double in (0, 1] — never returns 0, safe for log().
  double next_uniform_pos() noexcept {
    // 53 random bits; +1 shifts the support away from zero.
    const std::uint64_t bits = (rng_() >> 11) + 1;
    return static_cast<double>(bits) * 0x1.0p-53;
  }

  /// Uniform double in [0, 1).
  double next_uniform() noexcept {
    return static_cast<double>(rng_() >> 11) * 0x1.0p-53;
  }

  /// Exponential with rate `lambda` (mean 1/lambda). Requires lambda > 0.
  double next_exponential(double lambda) {
    expects(lambda > 0.0, "exponential rate must be positive");
    return -std::log(next_uniform_pos()) / lambda;
  }

  /// Uniform integer in [0, n). Requires n > 0. Lemire-style rejection-free
  /// approximation is unnecessary here; modulo bias is negligible for the
  /// small n used in reaction selection, but we still debias for rigor.
  std::uint64_t next_below(std::uint64_t n) {
    expects(n > 0, "next_below requires n > 0");
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = rng_();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal via Marsaglia polar method.
  double next_normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * next_uniform() - 1.0;
      v = 2.0 * next_uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  /// Poisson(mean) — inversion for small means, PTRS-lite (normal approx with
  /// continuity correction) for large means. Adequate for workload synthesis.
  std::uint64_t next_poisson(double mean) {
    expects(mean >= 0.0, "poisson mean must be non-negative");
    if (mean < 30.0) {
      const double limit = std::exp(-mean);
      double prod = next_uniform_pos();
      std::uint64_t n = 0;
      while (prod > limit) {
        prod *= next_uniform_pos();
        ++n;
      }
      return n;
    }
    const double x = mean + std::sqrt(mean) * next_normal() + 0.5;
    return x < 0.0 ? 0 : static_cast<std::uint64_t>(x);
  }

 private:
  static std::uint64_t mix(std::uint64_t seed, std::uint64_t stream_id) noexcept {
    // Feed both through SplitMix so that nearby (seed, id) pairs decorrelate.
    splitmix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
    (void)sm();
    return sm();
  }

  std::uint64_t key_ = 0;  ///< construction key; split() derives children from it
  xoshiro256ss rng_;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

/// A bank of N independent streams in structure-of-arrays layout — the
/// batch engine's lane RNGs. Lane i of rng_lane_bank(seed, first_id, n) is
/// the EXACT stream rng_stream(seed, first_id + i): same SplitMix key
/// derivation, same xoshiro256** seeding and update, so every lane draw is
/// bit-identical to the scalar stream a standalone engine for that
/// trajectory would own, regardless of whether it is drawn through the
/// per-lane scalar entry points or the lane-strided batch fill.
///
/// The SoA state (four u64 strips indexed by lane) is what makes the batch
/// fill auto-vectorizable: when every lane draws (the common lockstep
/// round), the update runs lane-innermost over contiguous arrays. A sparse
/// subset of lanes falls back to a per-listed-lane scalar loop over the
/// same state words — the per-lane value sequence is identical either way,
/// only instruction scheduling differs.
class rng_lane_bank {
 public:
  rng_lane_bank() = default;

  rng_lane_bank(std::uint64_t seed, std::uint64_t first_id, std::size_t n)
      : s0_(n), s1_(n), s2_(n), s3_(n) {
    for (std::size_t i = 0; i < n; ++i)
      seed_lane(i, seed, first_id + static_cast<std::uint64_t>(i));
  }

  /// Explicit-ids form: lane i owns the exact stream rng_stream(seed,
  /// ids[i]). Sweep batches pack lanes from different parameter cells whose
  /// trajectory ids restart per cell, so consecutive lanes no longer map to
  /// consecutive stream ids.
  rng_lane_bank(std::uint64_t seed, const std::vector<std::uint64_t>& ids)
      : s0_(ids.size()), s1_(ids.size()), s2_(ids.size()), s3_(ids.size()) {
    for (std::size_t i = 0; i < ids.size(); ++i) seed_lane(i, seed, ids[i]);
  }

  std::size_t size() const noexcept { return s0_.size(); }

  /// Uniform in [0, 2^64) from lane `i`'s stream.
  std::uint64_t next_u64(std::size_t i) noexcept { return advance(i); }

  /// Uniform double in (0, 1] from lane `i`'s stream (rng_stream's
  /// next_uniform_pos: 53 bits, support shifted off zero for log()).
  double next_uniform_pos(std::size_t i) noexcept {
    return to_uniform_pos(advance(i));
  }

  /// Dense batch draw: out[i] = next_uniform_pos(i) for EVERY lane — the
  /// lane-innermost loop over the contiguous state strips that the
  /// compiler auto-vectorizes. Use when a lockstep round draws on all
  /// lanes (the common case); per-lane values are bit-identical to the
  /// scalar entry points.
  void fill_uniform_pos_all(double* out) noexcept {
    const std::size_t n = size();
    std::uint64_t* __restrict__ s0 = s0_.data();
    std::uint64_t* __restrict__ s1 = s1_.data();
    std::uint64_t* __restrict__ s2 = s2_.data();
    std::uint64_t* __restrict__ s3 = s3_.data();
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t r = rotl(s1[i] * 5, 7) * 9;
      const std::uint64_t t = s1[i] << 17;
      s2[i] ^= s0[i];
      s3[i] ^= s1[i];
      s1[i] ^= s2[i];
      s0[i] ^= s3[i];
      s2[i] ^= t;
      s3[i] = rotl(s3[i], 45);
      out[i] = to_uniform_pos(r);
    }
  }

  /// Subset batch draw: out[j] = next_uniform_pos(lanes[j]) for j in
  /// [0, m). Lanes not listed do not advance; listed lanes must be
  /// distinct (each stream advances exactly once). Scalar loop — sparse
  /// lane subsets gather across the strips, which does not vectorize
  /// profitably; the value sequence per lane is identical either way.
  void fill_uniform_pos(const std::uint32_t* lanes, std::size_t m,
                        double* out) noexcept {
    for (std::size_t j = 0; j < m; ++j) out[j] = next_uniform_pos(lanes[j]);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  static double to_uniform_pos(std::uint64_t r) noexcept {
    return static_cast<double>((r >> 11) + 1) * 0x1.0p-53;
  }

  /// rng_stream's seeding chain, verbatim: key = mix(seed, id), then
  /// xoshiro256ss seeded through SplitMix64(key).
  void seed_lane(std::size_t i, std::uint64_t seed, std::uint64_t id) noexcept {
    splitmix64 keyer(seed ^ (0x9e3779b97f4a7c15ULL * (id + 1)));
    (void)keyer();
    splitmix64 sm(keyer());
    s0_[i] = sm();
    s1_[i] = sm();
    s2_[i] = sm();
    s3_[i] = sm();
  }

  /// xoshiro256** update on lane `i`'s state words (the scalar generator's
  /// operator(), over strided storage).
  std::uint64_t advance(std::size_t i) noexcept {
    const std::uint64_t result = rotl(s1_[i] * 5, 7) * 9;
    const std::uint64_t t = s1_[i] << 17;
    s2_[i] ^= s0_[i];
    s3_[i] ^= s1_[i];
    s1_[i] ^= s2_[i];
    s0_[i] ^= s3_[i];
    s2_[i] ^= t;
    s3_[i] = rotl(s3_[i], 45);
    return result;
  }

  std::vector<std::uint64_t> s0_, s1_, s2_, s3_;
};

}  // namespace util
