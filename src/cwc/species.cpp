#include "cwc/species.hpp"

#include <stdexcept>

namespace cwc {

std::uint32_t symbol_table::intern(std::string_view name) {
  const auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

std::uint32_t symbol_table::id(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  if (it == index_.end())
    throw std::out_of_range("unknown symbol: " + std::string(name));
  return it->second;
}

bool symbol_table::contains(std::string_view name) const {
  return index_.count(std::string(name)) > 0;
}

const std::string& symbol_table::name(std::uint32_t id) const {
  if (id >= names_.size()) throw std::out_of_range("symbol id out of range");
  return names_[id];
}

}  // namespace cwc
