// The run-server session protocol: schema-versioned frames exchanged
// between a tenant's client driver and svc::run_server over the dist
// wire/codec stack (net_channel transport, dist/archive framing).
//
// Every frame is [svc_tag byte][schema version byte][payload]; decoders
// reject foreign-build frames with dist::schema_mismatch_error (version
// registry: dist/schema.hpp). Uplink frames (client -> server) travel on
// the server's shared MPSC ingress and therefore carry the sender's
// connection id; downlink frames travel on a per-session channel and need
// no addressing.
//
// Reliability model (v3): the downlink *stream* frames — window,
// trajectory_done, and the terminal complete/error — carry a contiguous
// per-session sequence number, and the client acknowledges consumption
// with a CUMULATIVE count (credit/heartbeat frames carry "I have consumed
// stream frames [0, n)"). Cumulative acks make every uplink flow frame
// idempotent: a dropped or duplicated credit/heartbeat is healed by the
// next one. The server retains sent-but-unacknowledged stream frames in a
// bounded replay buffer, so a client that detects a sequence gap (a
// dropped downlink frame) or loses its connection can reconnect and
// resume the SAME session — open_request::resume_token names it,
// resume_next_seq says what the client already has, and the server
// replays only the missing tail. Trajectory execution state checkpoints
// server-side as (trajectory_id, completed-quantum high-water mark);
// engines are pure functions of (seed, trajectory_id), so a lost quantum
// deterministically replays without disturbing the stream.
//
// Flow control is window-based: the server keeps at most
// `window_credits` stream frames in flight beyond the client's cumulative
// ack, and stops granting a session pool quanta once its queue of
// produced-but-unsent frames reaches the same bound. A subscriber that
// falls behind stops acking, the session's server-side queues fill, and
// the scheduler parks it — the slow tenant throttles itself, never the
// shared pool.
//
// Liveness: every uplink frame refreshes the session's lease; a client
// that goes silent past the server's heartbeat timeout is presumed dead
// and reaped (its session parks recoverable for the retention window,
// then expires). heartbeat is the no-op uplink frame clients send when
// they have nothing else to say. A server shedding load answers open
// requests with a typed retry_after frame instead of admitting.
#pragma once

#include "core/backend.hpp"
#include "dist/wire.hpp"

namespace svc {

/// Frame kind, first byte of every svc frame.
enum class svc_tag : std::uint8_t {
  // ---- uplink: client -> server (shared ingress, addressed) ----
  open = 1,     ///< submit a run request (model + config + QoS knobs)
  credit = 2,   ///< cumulative consumption ack (backpressure release)
  cancel = 3,   ///< cooperative stop: tear down, reply with complete frame
  close = 4,    ///< disconnect: tear down silently (no reply expected)
  // ---- downlink: server -> client (per-session channel) ----
  open_ok = 5,    ///< session admitted (or resumed); streaming begins
  open_error = 6, ///< admission/validation rejected the request (final)
  window = 7,     ///< one window_summary (sequenced stream frame)
  trajectory_done = 8,  ///< one completion notice (sequenced stream frame)
  complete = 9,   ///< run over (normally or via cancel); last frame
  error = 10,     ///< tenant-isolated failure; last frame
  // ---- v3 resilience frames ----
  heartbeat = 11,   ///< uplink: liveness refresh + cumulative ack
  retry_after = 12, ///< downlink: shed under load — come back later
};

/// Uplink: everything the server needs to run a campaign for one tenant.
struct open_request {
  std::uint64_t conn_id = 0;
  /// Fair-share weight of this session in the deficit round-robin
  /// scheduler (relative quanta share under contention).
  double weight = 1.0;
  /// Bound of the per-session stream-frame windows (pending queue AND
  /// in-flight-beyond-ack replay buffer); 0 = server default.
  std::uint64_t window_credits = 0;
  /// Resume an existing session instead of opening a fresh one: the
  /// session_token a previous open_ack handed out. 0 = fresh open.
  std::uint64_t resume_token = 0;
  /// With resume_token: the next stream sequence number this client has
  /// NOT yet consumed (the server replays from here).
  std::uint64_t resume_next_seq = 0;
  cwcsim::sim_config cfg{};
  /// The model description as one dist/model_codec frame. Empty when the
  /// model cannot cross the wire (custom rate laws) and the client
  /// registered its compiled artifact in-process instead.
  dist::byte_buffer model_frame;
  /// In-process fallback token from run_server::register_local_model();
  /// meaningful only when model_frame is empty.
  std::uint64_t local_model = 0;
};

/// Downlink: the session was admitted (or an existing one resumed).
struct open_ack {
  std::uint64_t session_id = 0;
  /// Capability for resume(): quote it in open_request::resume_token to
  /// re-attach to this session after a disconnect or a reap.
  std::uint64_t session_token = 0;
  std::uint32_t pool_workers = 0;  ///< shared pool width (for reports)
  std::uint64_t window_credits = 0;  ///< the bound actually applied
  bool cache_hit = false;  ///< model served from the compiled-model cache
  bool resumed = false;    ///< this ack re-attached an existing session
};

/// Downlink: the open was shed under load; retry after the hinted delay.
struct shed_notice {
  double retry_after_s = 0.0;
  std::string reason;
};

/// Downlink: the run finished (all trajectories, or torn down by cancel).
struct run_complete {
  /// Stream frames sent before this terminal frame; a client whose
  /// next expected sequence is smaller has missed frames and should
  /// resume instead of completing.
  std::uint64_t seq = 0;
  bool stopped = false;          ///< ended via cancel, results partial
  std::uint64_t trajectories = 0;  ///< completions streamed
  std::uint64_t quanta = 0;        ///< quanta accepted into this session
};

// ---- whole-frame encoders (tag + schema header + payload) -------------

dist::byte_buffer encode_open(const open_request& rq);
/// Cumulative ack: "I have consumed stream frames [0, consumed_total)".
dist::byte_buffer encode_credit(std::uint64_t conn_id,
                                std::uint64_t consumed_total);
/// Liveness refresh; carries the same cumulative ack so a lost credit
/// frame is healed by the next heartbeat.
dist::byte_buffer encode_heartbeat(std::uint64_t conn_id,
                                   std::uint64_t consumed_total);
dist::byte_buffer encode_cancel(std::uint64_t conn_id);
dist::byte_buffer encode_close(std::uint64_t conn_id);

dist::byte_buffer encode_open_ack(const open_ack& a);
dist::byte_buffer encode_open_error(const std::string& reason);
dist::byte_buffer encode_retry_after(const shed_notice& n);
dist::byte_buffer encode_window(std::uint64_t seq,
                                const cwcsim::window_summary& w);
dist::byte_buffer encode_trajectory_done(std::uint64_t seq,
                                         const cwcsim::task_done& d);
dist::byte_buffer encode_complete(const run_complete& c);
dist::byte_buffer encode_error(std::uint64_t seq, const std::string& reason);

// ---- decoding ----------------------------------------------------------

/// Consume the tag byte and validate the schema header; the payload then
/// reads with the matching read_* below. Throws schema_mismatch_error on
/// a foreign frame, std::runtime_error on an unknown tag.
svc_tag read_frame_header(dist::archive_reader& r);

open_request read_open(dist::archive_reader& r);
struct credit_grant {
  std::uint64_t conn_id = 0;
  std::uint64_t consumed_total = 0;
};
credit_grant read_credit(dist::archive_reader& r);  ///< credit/heartbeat
std::uint64_t read_conn_id(dist::archive_reader& r);  ///< cancel/close

open_ack read_open_ack(dist::archive_reader& r);
std::string read_reason(dist::archive_reader& r);  ///< open_error
shed_notice read_retry_after(dist::archive_reader& r);
struct seq_window {
  std::uint64_t seq = 0;
  cwcsim::window_summary window;
};
seq_window read_window(dist::archive_reader& r);
struct seq_task_done {
  std::uint64_t seq = 0;
  cwcsim::task_done done;
};
seq_task_done read_trajectory_done(dist::archive_reader& r);
run_complete read_complete(dist::archive_reader& r);
struct seq_error {
  std::uint64_t seq = 0;
  std::string reason;
};
seq_error read_error(dist::archive_reader& r);

}  // namespace svc
