// Umbrella header for the discrete-event performance-simulation library.
#pragma once

#include "des/engine.hpp"
#include "des/pipeline_model.hpp"
#include "des/platforms.hpp"
#include "des/resource.hpp"
#include "des/trace.hpp"
