// Flat binary archives: the serialisation substrate of the distributed
// runtime. Messages travelling between hosts are encoded into contiguous
// byte buffers (little-endian, as produced by the host — the virtual
// cluster is homogeneous, mirroring the paper's EC2 deployment).
//
// Reading past the end of a buffer throws std::runtime_error so a
// truncated/corrupted message surfaces as an error, never as garbage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

// The schema version constants live in the central registry
// (dist/schema.hpp — the single bump point for every frame family);
// archive.hpp only provides the header put/check machinery around them.
#include "dist/schema.hpp"

namespace dist {

using byte_buffer = std::vector<std::byte>;

/// Thrown by check_schema_header() when a frame was produced under a
/// different schema version than this build understands.
class schema_mismatch_error : public std::runtime_error {
 public:
  schema_mismatch_error(std::uint8_t expected, std::uint8_t found)
      : std::runtime_error("archive schema mismatch: expected version " +
                           std::to_string(expected) + ", found version " +
                           std::to_string(found)),
        expected_(expected),
        found_(found) {}

  std::uint8_t expected() const noexcept { return expected_; }
  std::uint8_t found() const noexcept { return found_; }

 private:
  std::uint8_t expected_;
  std::uint8_t found_;
};

/// Append-only binary encoder.
class archive_writer {
 public:
  /// Append one trivially-copyable value.
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "archive_writer::put requires a trivially copyable type");
    append(&v, sizeof(T));
  }

  /// Append a length-prefixed string.
  void put_string(const std::string& s) {
    put<std::uint64_t>(s.size());
    append(s.data(), s.size());
  }

  /// Append a length-prefixed vector of trivially-copyable elements.
  template <typename T>
  void put_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "archive_writer::put_vector requires trivially copyable elements");
    put<std::uint64_t>(v.size());
    append(v.data(), v.size() * sizeof(T));
  }

  /// Append raw bytes.
  void append(const void* p, std::size_t n) {
    if (n == 0) return;
    const std::size_t old = buf_.size();
    buf_.resize(old + n);
    std::memcpy(buf_.data() + old, p, n);
  }

  std::size_t size() const noexcept { return buf_.size(); }

  /// Surrender the encoded buffer; the writer is empty afterwards.
  byte_buffer take() { return std::move(buf_); }

 private:
  byte_buffer buf_;
};

/// Sequential binary decoder over a borrowed buffer.
class archive_reader {
 public:
  explicit archive_reader(const byte_buffer& buf) : buf_(buf) {}

  /// Read one trivially-copyable value; throws std::runtime_error on
  /// underflow.
  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "archive_reader::get requires a trivially copyable type");
    require(sizeof(T));
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  /// Read a length-prefixed string.
  std::string get_string() {
    const auto n = get<std::uint64_t>();
    require(n);
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  /// Read a length-prefixed vector of trivially-copyable elements.
  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "archive_reader::get_vector requires trivially copyable elements");
    const auto n = get<std::uint64_t>();
    if (sizeof(T) != 0 && n > remaining() / sizeof(T))
      throw std::runtime_error("archive_reader: vector length overruns buffer");
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n > 0) {
      std::memcpy(v.data(), buf_.data() + pos_,
                  static_cast<std::size_t>(n) * sizeof(T));
      pos_ += static_cast<std::size_t>(n) * sizeof(T);
    }
    return v;
  }

  /// True when every byte has been consumed.
  bool exhausted() const noexcept { return pos_ == buf_.size(); }
  std::size_t remaining() const noexcept { return buf_.size() - pos_; }

 private:
  void require(std::uint64_t n) const {
    if (n > buf_.size() - pos_)
      throw std::runtime_error("archive_reader: underflow (need " +
                               std::to_string(n) + " bytes, have " +
                               std::to_string(buf_.size() - pos_) + ")");
  }

  const byte_buffer& buf_;
  std::size_t pos_ = 0;
};

/// Begin a versioned frame: the schema version byte is the frame header.
inline void put_schema_header(archive_writer& w) {
  w.put<std::uint8_t>(archive_schema_version);
}

/// Validate a versioned frame's header; throws schema_mismatch_error on a
/// version this build does not understand (std::runtime_error on a
/// truncated buffer, as for any other read).
inline void check_schema_header(archive_reader& r) {
  const auto v = r.get<std::uint8_t>();
  if (v != archive_schema_version)
    throw schema_mismatch_error(archive_schema_version, v);
}

}  // namespace dist
