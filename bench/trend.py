#!/usr/bin/env python3
"""Per-bench deltas between BENCH_engine.json revisions.

Diffs the current benchmark JSON (the file run_benches.sh just wrote)
against the copy tracked at a git revision — by default HEAD, i.e. the
last committed numbers — and prints a per-bench report:

    bench                              base ns     cur ns     delta
    bm_cwc_step_neurospora              145.9      143.2      -1.9% faster
    ...

Usage:
    bench/trend.py [--base REV] [--current PATH] [--threshold PCT]
                   [--fail-over PCT]

--fail-over adds a regression verdict: the report ends with a
"verdict: PASS" line when no benchmark is slower than the baseline by
more than PCT percent, and "verdict: REGRESSED (...)" naming the
offenders otherwise. The exit code stays 0 either way (shared CI runners
are too noisy to gate on), so the bench-smoke job surfaces the verdict
in its job summary instead of failing the build — the same philosophy as
BENCH_engine.json itself. A missing baseline (new clone, shallow
checkout, renamed file) degrades to a note, never an error.

ISA guard: both JSONs carry a "toolchain" block (see run_benches.sh).
When the baseline and the current run were built for different ISAs
(toolchain.march differs — e.g. a -DCWCSIM_NATIVE=ON run against a
baseline-ISA baseline), the numbers measure different machine code and a
"regression" would be meaningless, so the diff is refused outright:
"verdict: SKIPPED (ISA mismatch ...)", exit 0, no per-bench rows. A
baseline predating the toolchain record compares with a warning.
"""

import argparse
import json
import pathlib
import subprocess
import sys


def load_doc(text):
    """(toolchain dict | None, bench name -> metrics) from the JSON doc."""
    doc = json.loads(text)
    return doc.get("toolchain"), {
        r["bench"]: {
            "real_time_ns": r.get("real_time_ns"),
            "items_per_sec": r.get("items_per_sec"),
        }
        for r in doc.get("results", [])
    }


def git_show(rev, path):
    try:
        return subprocess.run(
            ["git", "show", f"{rev}:{path}"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None


def fmt_ns(ns):
    return f"{ns:12.1f}" if ns is not None else " " * 12


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--base", default="HEAD",
                    help="git revision holding the baseline JSON (default: HEAD)")
    ap.add_argument("--current", default="BENCH_engine.json",
                    help="freshly generated JSON file (default: BENCH_engine.json)")
    ap.add_argument("--threshold", type=float, default=5.0,
                    help="flag deltas beyond this percentage (default: 5)")
    ap.add_argument("--fail-over", type=float, default=None, metavar="PCT",
                    help="emit a PASS/REGRESSED verdict line for benches "
                         "slower than the baseline by more than PCT percent "
                         "(report only - exit code stays 0)")
    args = ap.parse_args()

    repo = pathlib.Path(__file__).resolve().parent.parent
    current_path = pathlib.Path(args.current)
    if not current_path.is_absolute():
        current_path = repo / current_path
    if not current_path.exists():
        print(f"note: {current_path} not found — run bench/run_benches.sh first")
        return 0
    cur_tc, current = load_doc(current_path.read_text())

    rel = current_path.relative_to(repo) if current_path.is_relative_to(repo) \
        else pathlib.Path("BENCH_engine.json")
    base_text = git_show(args.base, rel.as_posix())
    if base_text is None:
        print(f"note: no baseline at {args.base}:{rel} — nothing to diff")
        return 0
    base_tc, base = load_doc(base_text)

    # Refuse cross-ISA comparisons: -march changes the machine code under
    # measurement, so a slowdown/speedup between the two files is not a
    # regression signal. SKIPPED is a verdict, not an error (exit 0) — the
    # CI job summary shows it instead of a bogus REGRESSED.
    if base_tc is not None and cur_tc is not None:
        b_march = base_tc.get("march", "unknown")
        c_march = cur_tc.get("march", "unknown")
        if b_march != c_march:
            print(f"baseline ISA:  {b_march} ({base_tc.get('compiler', '?')})")
            print(f"current ISA:   {c_march} ({cur_tc.get('compiler', '?')})")
            print("verdict: SKIPPED (ISA mismatch — benchmark numbers from "
                  "different -march targets are not comparable; rerun both "
                  "sides under the same CWCSIM_NATIVE setting to diff)")
            return 0
    elif base_tc is None:
        print(f"warning: baseline {args.base}:{rel} predates the toolchain "
              "record — comparing anyway, ISA unknown")

    names = sorted(set(base) | set(current))
    width = max((len(n) for n in names), default=5)
    print(f"benchmark trend vs {args.base} "
          f"(real time per op; +slower / -faster, |Δ|>{args.threshold:g}% flagged)")
    print(f"{'bench':<{width}}  {'base ns':>12}  {'cur ns':>12}  delta")
    flagged = 0
    regressed = []
    for name in names:
        b = base.get(name, {}).get("real_time_ns")
        c = current.get(name, {}).get("real_time_ns")
        if b is None:
            print(f"{name:<{width}}  {fmt_ns(b)}  {fmt_ns(c)}  NEW")
            continue
        if c is None:
            print(f"{name:<{width}}  {fmt_ns(b)}  {fmt_ns(c)}  REMOVED")
            continue
        delta = (c - b) / b * 100.0 if b else 0.0
        mark = ""
        if abs(delta) > args.threshold:
            mark = "  ** slower **" if delta > 0 else "  (faster)"
            flagged += 1
        if args.fail_over is not None and delta > args.fail_over:
            regressed.append((name, delta))
        print(f"{name:<{width}}  {fmt_ns(b)}  {fmt_ns(c)}  {delta:+6.1f}%{mark}")
    print(f"{flagged} bench(es) beyond ±{args.threshold:g}% "
          f"({len(names)} compared). Informational only — not a gate.")
    if args.fail_over is not None:
        if regressed:
            worst = ", ".join(f"{n} +{d:.1f}%" for n, d in regressed)
            print(f"verdict: REGRESSED (> {args.fail_over:g}% slower: {worst})")
        else:
            print(f"verdict: PASS (no bench > {args.fail_over:g}% slower "
                  f"than {args.base})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
