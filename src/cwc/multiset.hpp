// Multisets of atomic species over a fixed alphabet — the building block of
// CWC terms (both compartment contents and membranes/wraps are multisets).
#pragma once

#include <cstdint>
#include <vector>

#include "cwc/species.hpp"

namespace cwc {

class multiset {
 public:
  multiset() = default;

  /// Empty multiset over an alphabet of `universe` species.
  explicit multiset(std::size_t universe) : counts_(universe, 0) {}

  std::size_t universe() const noexcept { return counts_.size(); }

  std::uint64_t count(species_id s) const;

  /// Total number of atoms (with multiplicity).
  std::uint64_t total() const noexcept;

  /// Number of distinct species present.
  std::size_t distinct() const noexcept;

  bool is_empty() const noexcept { return total() == 0; }

  void add(species_id s, std::uint64_t n = 1);

  /// Remove n copies; throws util::precondition_error when fewer are present.
  void remove(species_id s, std::uint64_t n = 1);

  void set(species_id s, std::uint64_t n);

  /// True when every species count in `sub` is <= the count here.
  bool contains(const multiset& sub) const;

  void add_all(const multiset& other);

  /// Remove other from this; throws when not contained.
  void remove_all(const multiset& other);

  /// Gillespie combinatorics: number of distinct ways to choose the pattern
  /// from this multiset, prod_s C(count(s), pattern(s)). Returns 0 when the
  /// pattern is not contained.
  double combinations(const multiset& pattern) const;

  bool operator==(const multiset& other) const;

  /// Iterate non-zero entries: f(species_id, count).
  template <typename F>
  void for_each(F&& f) const {
    for (species_id s = 0; s < counts_.size(); ++s)
      if (counts_[s] != 0) f(s, counts_[s]);
  }

 private:
  void grow_to(std::size_t n);
  std::vector<std::uint64_t> counts_;
};

/// C(n, k) as double (k expected small); 0 when k > n.
double choose(std::uint64_t n, std::uint64_t k) noexcept;

}  // namespace cwc
