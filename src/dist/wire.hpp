// Wire codecs for the pipeline messages that cross host boundaries in the
// distributed deployment: per-quantum sample batches (worker -> master
// alignment stage) and completion notices (worker -> master scheduler).
#pragma once

#include "core/messages.hpp"
#include "dist/archive.hpp"

namespace dist {

/// Message kind tag prepended by the distributed simulator so a single
/// channel can carry heterogeneous traffic.
enum class wire_tag : std::uint8_t {
  sample_batch = 1,
  task_done = 2,
  quantum_trace = 3,
};

// Streaming forms: append to / read from an open archive, so callers can
// frame messages (tag + payload) without re-copying the encoded bytes.
void write_sample_batch(archive_writer& w, const cwcsim::sample_batch& b);
cwcsim::sample_batch read_sample_batch(archive_reader& r);
void write_task_done(archive_writer& w, const cwcsim::task_done& d);
cwcsim::task_done read_task_done(archive_reader& r);
void write_quantum_record(archive_writer& w, const cwcsim::quantum_record& q);
cwcsim::quantum_record read_quantum_record(archive_reader& r);

// Whole-buffer convenience forms.
byte_buffer encode_sample_batch(const cwcsim::sample_batch& b);
cwcsim::sample_batch decode_sample_batch(const byte_buffer& bytes);

byte_buffer encode_task_done(const cwcsim::task_done& d);
cwcsim::task_done decode_task_done(const byte_buffer& bytes);

}  // namespace dist
