// Seeded chaos harness for the run server: one value that names every
// fault the resilience layer must absorb, so a test matrix (or a soak, or
// a bench) can turn the same screws reproducibly.
//
// Three fault families:
//   - transport: drop / duplicate / delay-jitter on the shared uplink
//     ingress and on every per-session downlink, realised through the
//     existing dist::net_channel seeded fault streams (net_params). Each
//     downlink derives its own stream from (seed, conn_id), so the fault
//     pattern is deterministic per connection and independent across
//     tenants.
//   - engine: throw from inside quantum execution the first time a
//     trajectory reaches quantum index `engine_throw_at_quantum` —
//     the in-process stand-in for a worker crash. Fires exactly once per
//     server (the injected fault is transient, so the recovery path's
//     checkpoint-replay must succeed on retry).
//   - client: `client_vanish_after_s` is a harness knob consumed by
//     test/bench clients (the server never reads it): a chaos client
//     abandons its connection — no close frame, a true vanish — after
//     that much wall time, exercising the heartbeat reaper.
//
// All knobs default to "off": a default chaos_params leaves every code
// path bit-exact with the fault-free server.
#pragma once

#include <cstdint>

#include "dist/net_params.hpp"

namespace svc {

struct chaos_params {
  /// Sentinel: no engine-throw injection.
  static constexpr std::uint64_t no_quantum = ~std::uint64_t{0};

  // ---- transport faults (dist/net_channel seeded streams) ----
  double ingress_drop_prob = 0.0;
  double ingress_dup_prob = 0.0;
  double ingress_delay_s = 0.0;  ///< uniform jitter bound, FIFO-preserving
  double downlink_drop_prob = 0.0;
  double downlink_dup_prob = 0.0;
  double downlink_delay_s = 0.0;
  std::uint64_t seed = 0xC7A05C7A05ULL;  ///< fault-stream seed

  // ---- engine fault ----
  /// Throw (once, server-wide) when a trajectory first executes this
  /// quantum index. no_quantum = off.
  std::uint64_t engine_throw_at_quantum = no_quantum;

  // ---- client fault (consumed by harness clients, not the server) ----
  double client_vanish_after_s = 0.0;  ///< 0 = the client behaves

  bool any_transport_fault() const noexcept {
    return ingress_drop_prob > 0.0 || ingress_dup_prob > 0.0 ||
           ingress_delay_s > 0.0 || downlink_drop_prob > 0.0 ||
           downlink_dup_prob > 0.0 || downlink_delay_s > 0.0;
  }

  /// The server's shared-ingress link model: `base` (the configured
  /// latency/bandwidth) plus this harness's uplink faults.
  dist::net_params ingress_params(dist::net_params base) const noexcept {
    base.drop_prob = ingress_drop_prob;
    base.dup_prob = ingress_dup_prob;
    base.jitter_s = ingress_delay_s;
    base.drop_seed = seed;
    return base;
  }

  /// One session downlink's link model; the fault stream is derived from
  /// (seed, conn_id) so each tenant sees its own deterministic pattern.
  dist::net_params downlink_params(dist::net_params base,
                                   std::uint64_t conn_id) const noexcept {
    base.drop_prob = downlink_drop_prob;
    base.dup_prob = downlink_dup_prob;
    base.jitter_s = downlink_delay_s;
    base.drop_seed = seed ^ (conn_id * 0x9e3779b97f4a7c15ULL);
    return base;
  }
};

}  // namespace svc
