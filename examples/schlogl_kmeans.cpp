// On-line k-means classification of trajectories (the "k-means" statistical
// engine of the paper's analysis pipeline, Fig. 2): the Schlogl system is
// bistable, and clustering each cut cleanly separates the populations that
// settled in the low vs high attractor.
//
//   ./schlogl_kmeans [--trajectories 64] [--t-end 20]
#include <cstdio>

#include "core/cwcsim.hpp"
#include "models/models.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const util::cli cli(argc, argv);

  const auto net = models::make_schlogl({});

  cwcsim::sim_config cfg;
  cfg.num_trajectories =
      static_cast<std::uint64_t>(cli.get_int("trajectories", 64));
  cfg.t_end = cli.get_double("t-end", 20.0);
  cfg.sample_period = 0.5;
  cfg.quantum = 2.5;
  cfg.sim_workers = static_cast<unsigned>(cli.get_int("workers", 4));
  cfg.stat_engines = 2;
  cfg.window_size = 8;
  cfg.window_slide = 8;
  cfg.kmeans_k = 2;

  std::printf("Schlogl bistability: k-means(k=2) per cut over %llu trajectories\n",
              static_cast<unsigned long long>(cfg.num_trajectories));
  std::printf("%8s %14s %14s %10s %10s\n", "t", "centroid-low", "centroid-high",
              "n(low)", "n(high)");

  // Stream each window's classifications as the analysis pipeline emits
  // them — the on-line surface a monitoring GUI would subscribe to.
  auto session = cwcsim::run_builder().model(net).config(cfg).open();
  session.on_window([](const cwcsim::window_summary& w) {
    for (const auto& cut : w.cuts) {
      if (cut.sample_index % 4 != 0 || cut.clusters.centroids.size() != 2)
        continue;
      double lo = cut.clusters.centroids[0][0];
      double hi = cut.clusters.centroids[1][0];
      std::uint64_t nlo = cut.clusters.sizes[0];
      std::uint64_t nhi = cut.clusters.sizes[1];
      if (lo > hi) {
        std::swap(lo, hi);
        std::swap(nlo, nhi);
      }
      std::printf("%8.1f %14.1f %14.1f %10llu %10llu\n", cut.time, lo, hi,
                  static_cast<unsigned long long>(nlo),
                  static_cast<unsigned long long>(nhi));
    }
  });
  (void)session.wait();
  std::printf(
      "\nThe population splits between the low (~85) and high (~565)\n"
      "macroscopic states; ODE modelling would show only one of them\n"
      "(the paper's argument for stochastic simulation, §I).\n");
  return 0;
}
