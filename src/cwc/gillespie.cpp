#include "cwc/gillespie.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace cwc {

namespace {

/// a ≈ b under a relative tolerance (absolute near zero).
bool approx_equal(double a, double b, double rel_tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= rel_tol * scale;
}

}  // namespace

engine::engine(std::shared_ptr<const compiled_model> cm, std::uint64_t seed,
               std::uint64_t trajectory_id, engine_mode mode)
    : cm_(std::move(cm)),
      model_(cm_ != nullptr ? cm_->tree() : nullptr),
      trajectory_id_(trajectory_id),
      rng_(seed, trajectory_id),
      mode_(mode) {
  util::expects(model_ != nullptr, "cwc::engine needs a compiled tree model");
  state_ = model_->make_initial_state();
  rebuild_order();  // builds and enumerates a block for every compartment
}

engine::engine(const model& m, std::uint64_t seed, std::uint64_t trajectory_id,
               engine_mode mode)
    : engine(compiled_model::compile(m), seed, trajectory_id, mode) {}

engine::comp_block& engine::ensure_block(compartment& c) {
  auto it = cache_.find(&c);
  if (it != cache_.end()) return *it->second;
  auto blk = std::make_unique<comp_block>();
  blk->comp = &c;
  const auto& applicable = cm_->rules_for_type(c.type());
  blk->slots.reserve(applicable.size());
  for (std::uint32_t j : applicable) blk->slots.push_back(rule_slot{j, {}});
  for (rule_slot& sl : blk->slots) enumerate_slot(*blk, sl);
  resum_block(*blk);
  comp_block& ref = *blk;
  cache_.emplace(&c, std::move(blk));
  return ref;
}

void engine::enumerate_slot(comp_block& b, rule_slot& sl) {
  sl.matches.clear();  // capacity retained: no allocation once warmed up
  cm_->rules()[sl.rule].for_each_match(
      *b.comp, [&](std::size_t child, double p) {
        sl.matches.push_back(
            match_rec{child == rule::no_child
                          ? kNoChild
                          : static_cast<std::uint32_t>(child),
                      p});
      });
}

void engine::resum_block(comp_block& b) {
  // Canonical left-to-right fold (rule declaration order, children in index
  // order): a block refreshed piecemeal re-sums to the bit-identical value a
  // fresh enumeration would produce.
  double sub = 0.0;
  for (const rule_slot& sl : b.slots)
    for (const match_rec& mr : sl.matches) sub += mr.propensity;
  b.subtotal = sub;
}

void engine::rebuild_order() {
  order_.clear();
  state_->visit_with_parent([&](compartment& c, compartment* parent) {
    comp_block& b = ensure_block(c);
    b.parent = parent;
    order_.push_back(&b);
  });
}

void engine::refresh_all() {
  // The naive reference collector: walk the whole tree and re-enumerate
  // every (compartment, rule, child) match from the current state.
  order_.clear();
  state_->visit_with_parent([&](compartment& c, compartment* parent) {
    comp_block& b = ensure_block(c);
    b.parent = parent;
    for (rule_slot& sl : b.slots) enumerate_slot(b, sl);
    resum_block(b);
    order_.push_back(&b);
  });
}

void engine::refresh_block(comp_block& b,
                           const std::vector<std::uint32_t>& rules) {
  const auto& slots_by_rule = cm_->slot_of(b.comp->type());
  bool any = false;
  for (std::uint32_t k : rules) {
    const std::int32_t si = slots_by_rule[k];
    if (si < 0) continue;  // rule not applicable in this compartment type
    enumerate_slot(b, b.slots[static_cast<std::size_t>(si)]);
    any = true;
  }
  if (any) resum_block(b);
}

void engine::refresh_after_fire(std::uint32_t fired, compartment* host) {
  if (fx_.structure_changed) rebuild_order();
  comp_block& hb = *cache_.at(host);
  refresh_block(hb, cm_->redo_host(fired));
  if (fx_.bound_child != nullptr && cm_->writes_child(fired))
    refresh_block(*cache_.at(fx_.bound_child), cm_->redo_child(fired));
  if (cm_->writes_host(fired) && hb.parent != nullptr)
    refresh_block(*cache_.at(hb.parent), cm_->redo_parent(fired));
}

double engine::current_total() {
  double total = 0.0;
  for (const comp_block* b : order_) total += b->subtotal;
  return total;
}

void engine::fire(double target) {
  // Two-level selection: a prefix walk over the per-compartment block
  // subtotals finds the compartment, then a linear scan inside that block's
  // short match list finds the (rule, child) match. Identical arithmetic in
  // both engine modes keeps sample paths bit-for-bit reproducible.
  comp_block* chosen = nullptr;
  std::uint32_t rule_idx = 0;
  std::uint32_t child = kNoChild;
  bool found = false;

  double cum = 0.0;
  for (comp_block* b : order_) {
    const double with = cum + b->subtotal;
    if (b->subtotal > 0.0 && with >= target) {
      double inner = cum;
      for (rule_slot& sl : b->slots) {
        for (const match_rec& mr : sl.matches) {
          inner += mr.propensity;
          if (inner >= target) {
            chosen = b;
            rule_idx = sl.rule;
            child = mr.child;
            found = true;
            break;
          }
        }
        if (found) break;
      }
      if (!found) {
        // Floating-point tail inside the block: fall back to its last match.
        for (auto it = b->slots.rbegin(); it != b->slots.rend() && !found;
             ++it) {
          if (it->matches.empty()) continue;
          chosen = b;
          rule_idx = it->rule;
          child = it->matches.back().child;
          found = true;
        }
      }
      break;  // selection always terminates at the first qualifying block
    }
    cum = with;
  }
  if (!found) {
    // Floating-point tail at the grand level: fall back to the last match
    // anywhere (mirrors the historical fallback; unreachable for finite
    // positive propensities since the block fold reproduces the total).
    for (auto bit = order_.rbegin(); bit != order_.rend() && !found; ++bit) {
      for (auto it = (*bit)->slots.rbegin();
           it != (*bit)->slots.rend() && !found; ++it) {
        if (it->matches.empty()) continue;
        chosen = *bit;
        rule_idx = it->rule;
        child = it->matches.back().child;
        found = true;
      }
    }
  }
  util::ensures(found, "SSA selection on empty match set");

  const rule& r = cm_->rules()[rule_idx];
  rule::match m;
  if (child != kNoChild) m.child_index = child;
  compartment* host = chosen->comp;
  r.apply(*host, m, &fx_);
  ++steps_;

  // Drop cache entries for compartments the firing destroyed *before* the
  // nodes are freed (a later allocation may reuse the address).
  if (fx_.removed != nullptr)
    fx_.removed->visit([&](compartment& dead) { cache_.erase(&dead); });

  if (mode_ == engine_mode::incremental) {
    refresh_after_fire(rule_idx, host);
#ifndef NDEBUG
    if (steps_ % kConsistencyPeriod == 0)
      util::ensures(check_match_cache(),
                    "incremental match cache diverged from a fresh collect");
#endif
  } else {
    // Reference mode re-collects eagerly so the cache (and the pre-order
    // view in order_ — no dangling block pointers after a structural
    // rewrite) is always consistent with the live tree.
    refresh_all();
  }
  fx_.removed.reset();
}

bool engine::step() {
  if (stalled_) return false;
  const double total = current_total();
  if (total <= 0.0) {
    stalled_ = true;
    return false;
  }
  // NB: not value_or() — that would consume an exponential even when a
  // deferred reaction exists (value_or evaluates its argument eagerly).
  const double t_next = pending_t_next_.has_value()
                            ? *pending_t_next_
                            : time_ + rng_.next_exponential(total);
  pending_t_next_.reset();
  fire(rng_.next_uniform_pos() * total);
  time_ = t_next;
  return true;
}

void engine::record_sample(double at, std::vector<trajectory_sample>& out) {
  trajectory_sample s;
  s.time = at;
  // One right-sized allocation for the sample's own buffer; the compiled
  // observable plans evaluate every observable in a single tree walk.
  cm_->observe_all(*state_, obs_scratch_, s.values);
  out.push_back(std::move(s));
}

void engine::run_to(double t_end, double sample_period,
                    std::vector<trajectory_sample>& out) {
  util::expects(sample_period > 0.0, "sample period must be positive");
  util::expects(t_end >= time_, "run_to target precedes current time");

  // Sample times come from the indexed grid (k * sample_period), compared
  // against the horizon with a tolerance, so no sample point is ever lost
  // to floating-point truncation (30 / 0.1 landing at 299.999…).
  const double horizon = t_end + sample_tolerance(t_end, sample_period);

  while (true) {
    if (stalled_) break;
    const double total = current_total();
    if (total <= 0.0) {
      stalled_ = true;
      break;
    }
    // A reaction drawn in a previous quantum that lands beyond that
    // quantum's horizon is *kept* (the state cannot change across the
    // boundary), so the sample path is bit-for-bit independent of the
    // quantum size — quantum is a pure scheduling knob (paper Table I).
    const double t_next = pending_t_next_.has_value()
                              ? *pending_t_next_
                              : time_ + rng_.next_exponential(total);

    // Emit samples for every sample point the jump crosses (the SSA state
    // is right-continuous piecewise constant).
    while (sample_time(next_sample_k_, sample_period) <= horizon &&
           sample_time(next_sample_k_, sample_period) <= t_next) {
      record_sample(sample_time(next_sample_k_, sample_period), out);
      ++next_sample_k_;
    }
    if (t_next > t_end) {
      pending_t_next_ = t_next;
      time_ = t_end;
      return;
    }

    pending_t_next_.reset();
    fire(rng_.next_uniform_pos() * total);
    time_ = t_next;
  }

  // Stalled: the state is frozen; emit the remaining samples up to t_end.
  while (sample_time(next_sample_k_, sample_period) <= horizon) {
    record_sample(sample_time(next_sample_k_, sample_period), out);
    ++next_sample_k_;
  }
  time_ = t_end;
}

bool engine::check_match_cache(double rel_tol) const {
  bool ok = true;
  std::size_t idx = 0;
  double cached_total = 0.0;
  double fresh_total = 0.0;
  state_->visit([&](const compartment& c) {
    if (!ok) return;
    if (idx >= order_.size() || order_[idx]->comp != &c) {
      ok = false;  // pre-order view out of sync with the live tree
      return;
    }
    const comp_block& b = *order_[idx++];
    const auto& applicable = cm_->rules_for_type(c.type());
    if (b.slots.size() != applicable.size()) {
      ok = false;
      return;
    }
    double fresh_sub = 0.0;
    for (std::size_t si = 0; si < applicable.size(); ++si) {
      const rule_slot& sl = b.slots[si];
      if (sl.rule != applicable[si]) {
        ok = false;
        return;
      }
      std::size_t mi = 0;
      cm_->rules()[sl.rule].for_each_match(
          c, [&](std::size_t child, double p) {
            fresh_sub += p;
            if (!ok || mi >= sl.matches.size()) {
              ok = false;
              return;
            }
            const match_rec& mr = sl.matches[mi++];
            const std::uint32_t want =
                child == rule::no_child ? kNoChild
                                        : static_cast<std::uint32_t>(child);
            if (mr.child != want || !approx_equal(mr.propensity, p, rel_tol))
              ok = false;
          });
      if (mi != sl.matches.size()) ok = false;
      if (!ok) return;
    }
    if (!approx_equal(fresh_sub, b.subtotal, rel_tol)) ok = false;
    cached_total += b.subtotal;
    fresh_total += fresh_sub;
  });
  if (idx != order_.size()) ok = false;
  return ok && approx_equal(fresh_total, cached_total, rel_tol);
}

}  // namespace cwc
