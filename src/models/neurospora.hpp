// The paper's evaluation workload: circadian oscillations driven by
// transcriptional regulation of the frequency (frq) gene in Neurospora
// crassa, after Leloup, Gonze & Goldbeter, J. Biol. Rhythms 14(6), 1999 —
// the model cited by the paper ([20]).
//
// Species: frq mRNA (M), cytosolic FRQ protein (FC), nuclear FRQ (FN).
// FN represses frq transcription (negative feedback, Hill exponent 4),
// producing a ~21.5 h limit cycle in the deterministic model.
//
// Three synchronized forms are provided:
//  - CWC term model (cell compartment wrapping a nucleus; transport rules
//    move FRQ across the nuclear membrane) — what the CWC simulator runs;
//  - flat reaction network (for baseline engines and cross-validation);
//  - deterministic ODE right-hand side (for reference dynamics).
//
// Stochastic conversion uses system size `omega` (molecules per nM):
// counts x = omega * concentration; Hill/MM parameters scale accordingly.
#pragma once

#include <utility>
#include <vector>

#include "cwc/cwc.hpp"

namespace models {

struct neurospora_params {
  // Leloup-Gonze-Goldbeter 1999, Neurospora parameter set (units: nM, h).
  double vs = 1.6;    ///< maximal transcription rate (nM/h)
  double vm = 0.505;  ///< maximal mRNA degradation rate (nM/h)
  double km = 0.5;    ///< mRNA degradation Michaelis constant (nM)
  double ks = 0.5;    ///< translation rate (1/h)
  double vd = 1.4;    ///< maximal FRQ degradation rate (nM/h)
  double kd = 0.13;   ///< FRQ degradation Michaelis constant (nM)
  double k1 = 0.5;    ///< cytosol -> nucleus transport (1/h)
  double k2 = 0.6;    ///< nucleus -> cytosol transport (1/h)
  double ki = 1.0;    ///< repression threshold (nM)
  double hill_n = 4.0;

  double m0 = 0.1;   ///< initial [M] (nM)
  double fc0 = 0.1;  ///< initial [FC] (nM)
  double fn0 = 0.1;  ///< initial [FN] (nM)

  /// System size: molecules per nM of concentration.
  double omega = 100.0;
};

/// Names of the three observables, in the order the models register them.
inline constexpr const char* neurospora_observables[] = {"M", "FC", "FN"};

/// CWC model: top contains a `cell` compartment holding M and FC, which in
/// turn wraps a `nucleus` compartment holding FN.
cwc::model make_neurospora_cwc(const neurospora_params& p = {});

/// Flat network over species {M, FC, FN} with identical kinetics.
cwc::reaction_network make_neurospora_flat(const neurospora_params& p = {});

/// Deterministic ODE (concentration space, nM): returns the derivative
/// function and the initial state {M, FC, FN}.
std::pair<cwc::deriv_fn, std::vector<double>> make_neurospora_ode(
    const neurospora_params& p = {});

}  // namespace models
