#include "ff/farm.hpp"

#include "util/check.hpp"

namespace ff {

namespace {

/// Default emitter/collector: forward every token downstream unchanged.
class forwarder final : public node {
 public:
  outcome svc(token t) override {
    send_out(std::move(t));
    return outcome::more;
  }
};

}  // namespace

farm::farm(std::vector<std::unique_ptr<node>> workers) : workers_(std::move(workers)) {
  util::expects(!workers_.empty(), "farm needs at least one worker");
  for (const auto& w : workers_) util::expects(w != nullptr, "null farm worker");
}

farm& farm::set_emitter(std::unique_ptr<node> e) {
  emitter_ = std::move(e);
  return *this;
}

farm& farm::set_collector(std::unique_ptr<node> c) {
  collector_ = std::move(c);
  has_collector_ = true;
  return *this;
}

farm& farm::remove_collector() noexcept {
  collector_.reset();
  has_collector_ = false;
  return *this;
}

farm& farm::set_dispatch(out_policy p) noexcept {
  dispatch_ = p;
  return *this;
}

farm& farm::set_worker_channel_capacity(std::size_t cap) noexcept {
  worker_capacity_ = cap;
  return *this;
}

farm& farm::enable_feedback(feedback_from src) noexcept {
  feedback_ = src;
  return *this;
}

ports farm::materialize(network& net) {
  node* emitter = net.add(emitter_ ? std::move(emitter_)
                                   : std::make_unique<forwarder>());
  emitter->set_name(emitter->name() == "node" ? "farm-emitter" : emitter->name());
  emitter->set_out_policy(dispatch_);

  std::vector<node*> workers;
  workers.reserve(workers_.size());
  for (auto& w : workers_) workers.push_back(net.add(std::move(w)));
  workers_.clear();

  for (node* w : workers) net.connect(emitter, w, worker_capacity_);

  node* collector = nullptr;
  if (has_collector_) {
    collector = net.add(collector_ ? std::move(collector_)
                                   : std::make_unique<forwarder>());
    collector->set_name(collector->name() == "node" ? "farm-collector"
                                                    : collector->name());
    for (node* w : workers) net.connect(w, collector, default_channel_capacity);
  }

  switch (feedback_) {
    case feedback_from::none:
      break;
    case feedback_from::workers:
      for (node* w : workers)
        net.connect(w, emitter, /*capacity=*/0, edge_kind::feedback);
      break;
    case feedback_from::collector:
      util::expects(collector != nullptr,
                    "collector feedback requires a collector");
      net.connect(collector, emitter, /*capacity=*/0, edge_kind::feedback);
      break;
  }

  ports p;
  p.in = {emitter};
  if (collector != nullptr) {
    p.out = {collector};
  } else {
    p.out = workers;
  }
  return p;
}

void farm::run_and_wait() {
  network net;
  materialize(net);
  net.run_and_wait();
}

}  // namespace ff
