// Lloyd's k-means with k-means++ seeding over small point sets — the
// "k-means" statistical engine of the analysis pipeline (paper Fig. 2).
// Applied per trajectory cut, it classifies trajectories into macroscopic
// states (e.g. the two Schlogl attractors or oscillation phases).
#pragma once

#include <cstdint>
#include <vector>

namespace stats {

struct kmeans_result {
  /// centroids[c] is a D-dimensional centre.
  std::vector<std::vector<double>> centroids;
  /// assignment[i] = cluster of point i.
  std::vector<std::uint32_t> assignment;
  /// points per cluster.
  std::vector<std::uint64_t> sizes;
  /// total within-cluster sum of squared distances.
  double inertia = 0.0;
  std::uint32_t iterations = 0;
};

/// Cluster `points` (each of equal dimension) into k groups.
/// Deterministic for a given seed. k is clamped to the number of points.
kmeans_result kmeans(const std::vector<std::vector<double>>& points,
                     std::uint32_t k, std::uint64_t seed = 0,
                     std::uint32_t max_iterations = 64);

}  // namespace stats
