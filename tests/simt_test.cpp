// Tests for the SIMT execution model: warp packing, divergence accounting,
// slot scheduling, the map primitive, the GPU pipeline model, and
// functional equivalence of the GPU simulator with the multicore one.
#include <gtest/gtest.h>

#include "core/cwcsim.hpp"
#include "models/models.hpp"
#include "simt/simt.hpp"

namespace {

simt::device_spec tiny_device() {
  simt::device_spec d;
  d.name = "tiny";
  d.warp_size = 4;
  d.concurrent_warps = 2;
  d.kernel_launch_s = 0.0;
  d.step_slowdown = 1.0;
  return d;
}

TEST(KernelMakespan, UniformLanesNoDivergence) {
  const std::vector<double> lanes(8, 1.0);  // 2 warps of 4, 2 slots
  const auto st = simt::kernel_makespan(lanes, tiny_device());
  EXPECT_DOUBLE_EQ(st.device_seconds, 1.0);
  EXPECT_EQ(st.warps, 2u);
  EXPECT_DOUBLE_EQ(st.divergence_factor(), 1.0);
}

TEST(KernelMakespan, DivergenceIsLaneMax) {
  // One warp: lanes 1,1,1,9 -> warp runs 9s; divergence 4*9/12 = 3.
  const std::vector<double> lanes = {1.0, 1.0, 1.0, 9.0};
  const auto st = simt::kernel_makespan(lanes, tiny_device());
  EXPECT_DOUBLE_EQ(st.device_seconds, 9.0);
  EXPECT_DOUBLE_EQ(st.divergence_factor(), 3.0);
}

TEST(KernelMakespan, SlotSchedulingQueuesExcessWarps) {
  // 4 warps of 1s on 2 slots -> two rounds -> 2s.
  const std::vector<double> lanes(16, 1.0);
  const auto st = simt::kernel_makespan(lanes, tiny_device());
  EXPECT_DOUBLE_EQ(st.device_seconds, 2.0);
  EXPECT_EQ(st.warps, 4u);
}

TEST(KernelMakespan, LaunchOverheadAdds) {
  auto dev = tiny_device();
  dev.kernel_launch_s = 0.5;
  const std::vector<double> lanes(4, 1.0);
  EXPECT_DOUBLE_EQ(simt::kernel_makespan(lanes, dev).device_seconds, 1.5);
}

TEST(KernelMakespan, EmptyKernelIsFree) {
  const auto st = simt::kernel_makespan({}, tiny_device());
  EXPECT_DOUBLE_EQ(st.device_seconds, 0.0);
  EXPECT_EQ(st.warps, 0u);
}

TEST(KernelMakespan, PartialLastWarp) {
  // 5 lanes with warp 4: second warp has one lane.
  const std::vector<double> lanes = {1, 1, 1, 1, 2};
  const auto st = simt::kernel_makespan(lanes, tiny_device());
  EXPECT_EQ(st.warps, 2u);
  EXPECT_DOUBLE_EQ(st.device_seconds, 2.0);  // both warps fit in the 2 slots
}

TEST(MapKernel, ExecutesBodyAndAccountsTime) {
  auto dev = tiny_device();
  std::vector<int> items = {1, 2, 3, 4};
  const auto st = simt::map_kernel(dev, std::span<int>(items), [](int& x) {
    x *= 10;
    return static_cast<double>(x) / 40.0;
  });
  EXPECT_EQ(items, (std::vector<int>{10, 20, 30, 40}));
  EXPECT_DOUBLE_EQ(st.device_seconds, 1.0);  // max lane = 40/40
}

TEST(GpuModel, CompletesAllCutsAndReportsDivergence) {
  const auto m = models::make_neurospora_cwc({});
  cwcsim::model_ref mr;
  mr.tree = &m;
  cwcsim::sim_config cfg;
  cfg.num_trajectories = 64;
  cfg.t_end = 10.0;
  cfg.sample_period = 0.5;
  cfg.quantum = 2.0;
  const auto w = des::capture_workload(mr, cfg);
  des::calibration cal;

  const auto out = simt::simulate_gpu(w, cal, simt::devices::tesla_k40(),
                                      des::platforms::ec2_quadcore_vm(), {});
  EXPECT_EQ(out.pipeline.cuts, w.num_samples);
  EXPECT_EQ(out.kernels, w.max_quanta_per_trajectory());
  EXPECT_GE(out.divergence_factor, 1.0);
  EXPECT_LE(out.divergence_factor, 32.0);
  EXPECT_GT(out.pipeline.makespan_s, 0.0);
  EXPECT_GE(out.pipeline.makespan_s, out.device_busy_s - 1e-9);
}

TEST(GpuModel, MoreTrajectoriesSublinearUntilSaturation) {
  // GPU time grows much slower than linearly while warp slots are free —
  // the Table I phenomenon (GPU loses at N=128, wins at N>=512).
  const auto m = models::make_neurospora_cwc({});
  cwcsim::model_ref mr;
  mr.tree = &m;
  des::calibration cal;

  auto modeled = [&](std::uint64_t n) {
    cwcsim::sim_config cfg;
    cfg.num_trajectories = n;
    cfg.t_end = 5.0;
    cfg.sample_period = 0.5;
    cfg.quantum = 2.5;
    const auto w = des::capture_workload(mr, cfg);
    return simt::simulate_gpu(w, cal, simt::devices::tesla_k40(),
                              des::platforms::ec2_quadcore_vm(), {})
        .pipeline.makespan_s;
  };
  const double t128 = modeled(128);
  const double t512 = modeled(512);
  EXPECT_LT(t512, 2.0 * t128);  // 4x work for < 2x time
}

TEST(GpuSimulator, MatchesMulticoreResultsExactly) {
  const auto m = models::make_neurospora_cwc({});
  cwcsim::sim_config cfg;
  cfg.num_trajectories = 16;
  cfg.t_end = 12.0;
  cfg.sample_period = 0.5;
  cfg.quantum = 3.0;
  cfg.sim_workers = 3;
  cfg.stat_engines = 2;
  cfg.window_size = 5;
  cfg.window_slide = 5;

  const auto mc = cwcsim::simulate(m, cfg);
  auto gpu = simt::gpu_simulator(m, cfg, simt::devices::tesla_k40()).run();

  ASSERT_EQ(gpu.result.windows.size(), mc.windows.size());
  for (std::size_t i = 0; i < mc.windows.size(); ++i) {
    ASSERT_EQ(gpu.result.windows[i].cuts.size(), mc.windows[i].cuts.size());
    for (std::size_t c = 0; c < mc.windows[i].cuts.size(); ++c) {
      const auto& a = mc.windows[i].cuts[c];
      const auto& b = gpu.result.windows[i].cuts[c];
      for (std::size_t d = 0; d < a.moments.size(); ++d) {
        ASSERT_DOUBLE_EQ(a.moments[d].mean(), b.moments[d].mean());
        ASSERT_DOUBLE_EQ(a.moments[d].variance(), b.moments[d].variance());
      }
      ASSERT_EQ(a.medians, b.medians);
    }
  }
  EXPECT_GT(gpu.device_seconds, 0.0);
  EXPECT_GE(gpu.divergence_factor, 1.0);
  EXPECT_EQ(gpu.result.completions.size(), cfg.num_trajectories);
}

TEST(GpuSimulator, QuantumChangesTimingNotResults) {
  // Quantum is a performance knob: per-cut means must be identical across
  // quantum sizes (the engines keep deferred reactions across horizons).
  const auto m = models::make_neurospora_cwc({});
  cwcsim::sim_config a;
  a.num_trajectories = 8;
  a.t_end = 10.0;
  a.sample_period = 0.5;
  a.quantum = 0.5;
  auto b = a;
  b.quantum = 5.0;

  auto ra = simt::gpu_simulator(m, a, simt::devices::tesla_k40()).run();
  auto rb = simt::gpu_simulator(m, b, simt::devices::tesla_k40()).run();
  EXPECT_GT(ra.kernels, rb.kernels);

  const auto ca = ra.result.all_cuts();
  const auto cb = rb.result.all_cuts();
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t k = 0; k < ca.size(); ++k)
    for (std::size_t d = 0; d < ca[k].moments.size(); ++d)
      ASSERT_DOUBLE_EQ(ca[k].moments[d].mean(), cb[k].moments[d].mean())
          << "cut " << k;
}

}  // namespace
