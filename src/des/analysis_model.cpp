#include "des/analysis_model.hpp"

#include <algorithm>

#include "des/pipeline_model.hpp"
#include "util/check.hpp"

namespace des {

analysis_model::analysis_model(resource& cpu, const workload& w,
                               const calibration& cal, const host_spec& host,
                               unsigned stat_engines, std::size_t window_size,
                               std::size_t window_slide, sim_outcome& out)
    : cpu_(&cpu),
      w_(&w),
      cal_(&cal),
      host_(&host),
      stat_free_(stat_engines),
      window_size_(std::max<std::size_t>(1, window_size)),
      window_slide_(std::max<std::size_t>(1, window_slide)),
      out_(&out),
      cut_filled_(w.num_samples, 0) {
  util::expects(stat_engines > 0, "analysis needs at least one stat engine");
}

void analysis_model::deliver(std::uint64_t first_sample, std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t k = first_sample + i;
    util::expects(k < cut_filled_.size(), "sample index beyond horizon");
    if (++cut_filled_[k] == w_->num_trajectories) {
      ++out_->cuts;
      ++ready_cuts_;
      ++since_last_window_;
    }
  }
  // A window job covers window_size cuts and is issued every window_slide
  // newly completed cuts (overlap when slide < size) — the sliding-window
  // generator of Fig. 2.
  while (ready_cuts_ >= window_size_ && since_last_window_ >= window_slide_) {
    enqueue_job(window_size_);
    since_last_window_ -= window_slide_;
  }
  if (out_->cuts == w_->num_samples && since_last_window_ > 0) {
    // Trailing partial window at end of stream.
    enqueue_job(std::min<std::size_t>(window_size_, ready_cuts_));
    since_last_window_ = 0;
  }
  pump();
}

double analysis_model::align_cost(std::uint32_t samples) const {
  return static_cast<double>(samples) * cal_->align_ns_per_sample * 1e-9 /
         host_->speed * effective_overhead(*host_);
}

void analysis_model::pump() {
  while (stat_free_ > 0 && !job_queue_.empty()) {
    const std::size_t cuts = job_queue_.front();
    job_queue_.pop_front();
    --stat_free_;
    const double service = static_cast<double>(cuts) *
                           static_cast<double>(w_->num_trajectories) *
                           static_cast<double>(w_->observables) *
                           cal_->stat_ns_per_point * 1e-9 / host_->speed *
                           effective_overhead(*host_);
    out_->stat_busy_s += service;
    ++out_->stat_jobs;
    cpu_->submit(service, [this] {
      ++stat_free_;
      pump();
    });
  }
}

}  // namespace des
