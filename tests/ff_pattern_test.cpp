// Tests for the ff core patterns: pipeline composition, farms (dispatch
// policies, collectors), feedback loops with emitter-side termination, and
// error propagation out of node threads.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include "ff/ff.hpp"

namespace {

/// Source emitting ints [0, n).
class int_source final : public ff::node {
 public:
  explicit int_source(int n) : n_(n) {}
  ff::outcome svc(ff::token) override {
    if (i_ >= n_) return ff::outcome::end;
    send_out(ff::token::of(i_++));
    return i_ < n_ ? ff::outcome::more : ff::outcome::end;
  }

 private:
  int n_;
  int i_ = 0;
};

/// Sink collecting ints (thread-safe so farms without collectors can share).
class int_sink final : public ff::node {
 public:
  explicit int_sink(std::vector<int>* out) : out_(out) {}
  ff::outcome svc(ff::token t) override {
    std::lock_guard lk(mu_);
    out_->push_back(t.as<int>());
    return ff::outcome::more;
  }

 private:
  std::vector<int>* out_;
  std::mutex mu_;
};

TEST(Pipeline, TwoStagePreservesOrderAndContent) {
  std::vector<int> got;
  ff::pipeline p;
  p.add_stage(std::make_unique<int_source>(100));
  p.add_stage(std::make_unique<int_sink>(&got));
  p.run_and_wait();
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[i], i);
}

TEST(Pipeline, MiddleStageTransforms) {
  std::vector<int> got;
  ff::pipeline p;
  p.add_stage(std::make_unique<int_source>(50));
  p.add_stage(ff::make_node([](auto& self, ff::token t) {
    self.send_out(ff::token::of(t.template as<int>() * 2));
    return ff::outcome::more;
  }));
  p.add_stage(std::make_unique<int_sink>(&got));
  p.run_and_wait();
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[i], 2 * i);
}

TEST(Pipeline, EmptyPipelineRejected) {
  ff::pipeline p;
  ff::network net;
  EXPECT_THROW(p.materialize(net), util::precondition_error);
}

class square_worker final : public ff::node {
 public:
  ff::outcome svc(ff::token t) override {
    send_out(ff::token::of(t.as<int>() * t.as<int>()));
    return ff::outcome::more;
  }
};

class farm_param_test
    : public ::testing::TestWithParam<std::tuple<unsigned, ff::out_policy>> {};

TEST_P(farm_param_test, AllItemsProcessedExactlyOnce) {
  const auto [workers, policy] = GetParam();
  const int n = 200;
  std::vector<int> got;

  ff::pipeline p;
  p.add_stage(std::make_unique<int_source>(n));
  std::vector<std::unique_ptr<ff::node>> ws;
  for (unsigned i = 0; i < workers; ++i)
    ws.push_back(std::make_unique<square_worker>());
  auto f = std::make_unique<ff::farm>(std::move(ws));
  f->set_dispatch(policy);
  p.add_stage(std::move(f));
  p.add_stage(std::make_unique<int_sink>(&got));
  p.run_and_wait();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(n));
  std::multiset<int> expect;
  for (int i = 0; i < n; ++i) expect.insert(i * i);
  std::multiset<int> actual(got.begin(), got.end());
  EXPECT_EQ(actual, expect);
}

INSTANTIATE_TEST_SUITE_P(
    WorkersAndPolicies, farm_param_test,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 7u),
                       ::testing::Values(ff::out_policy::round_robin,
                                         ff::out_policy::on_demand)));

TEST(Farm, NoCollectorMergesAtNextStage) {
  const int n = 120;
  std::vector<int> got;
  ff::pipeline p;
  p.add_stage(std::make_unique<int_source>(n));
  std::vector<std::unique_ptr<ff::node>> ws;
  for (int i = 0; i < 3; ++i) ws.push_back(std::make_unique<square_worker>());
  auto f = std::make_unique<ff::farm>(std::move(ws));
  f->remove_collector();
  p.add_stage(std::move(f));
  p.add_stage(std::make_unique<int_sink>(&got));
  p.run_and_wait();
  EXPECT_EQ(got.size(), static_cast<std::size_t>(n));
}

TEST(Farm, RequiresAtLeastOneWorker) {
  std::vector<std::unique_ptr<ff::node>> none;
  EXPECT_THROW(ff::farm f(std::move(none)), util::precondition_error);
}

/// Feedback test: emitter re-circulates each token `rounds` times before
/// emitting downstream (a miniature of the CWC quantum scheduler).
class cycling_emitter final : public ff::node {
 public:
  cycling_emitter(int items, int rounds) : items_(items), rounds_(rounds) {
    set_continue_after_eos(true);
  }
  ff::outcome svc(ff::token t) override {
    auto [id, round] = t.as<std::pair<int, int>>();
    if (round < rounds_) {
      send_out(ff::token::of(std::make_pair(id, round)));  // to workers
      return ff::outcome::more;
    }
    ++retired_;
    return done();
  }
  ff::outcome on_upstream_eos() override {
    upstream_done_ = true;
    return done();
  }

 private:
  ff::outcome done() const {
    return (upstream_done_ && retired_ == items_) ? ff::outcome::end
                                                  : ff::outcome::more;
  }
  int items_;
  int rounds_;
  int retired_ = 0;
  bool upstream_done_ = false;
};

/// Worker: increments round, reports result downstream on last round and
/// always feeds the token back to the emitter.
class cycling_worker final : public ff::node {
 public:
  explicit cycling_worker(int rounds) : rounds_(rounds) {}
  ff::outcome svc(ff::token t) override {
    auto [id, round] = t.as<std::pair<int, int>>();
    ++round;
    if (round == rounds_) send_out(ff::token::of(id));
    send_feedback(ff::token::of(std::make_pair(id, round)));
    return ff::outcome::more;
  }

 private:
  int rounds_;
};

TEST(FarmFeedback, TokensCycleUntilEmitterRetiresThem) {
  const int items = 40, rounds = 5;
  std::vector<int> got;

  ff::pipeline p;
  p.add_stage(ff::make_node([items, i = 0](auto& self, ff::token) mutable {
    if (i >= items) return ff::outcome::end;
    self.send_out(ff::token::of(std::make_pair(i, 0)));
    ++i;
    return i < items ? ff::outcome::more : ff::outcome::end;
  }));
  std::vector<std::unique_ptr<ff::node>> ws;
  for (int i = 0; i < 3; ++i) ws.push_back(std::make_unique<cycling_worker>(rounds));
  auto f = std::make_unique<ff::farm>(std::move(ws));
  f->set_emitter(std::make_unique<cycling_emitter>(items, rounds))
      .enable_feedback(ff::feedback_from::workers);
  p.add_stage(std::move(f));
  p.add_stage(std::make_unique<int_sink>(&got));
  p.run_and_wait();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(items));
  std::set<int> unique(got.begin(), got.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(items));
}

TEST(Network, WorkerExceptionPropagatesToWait) {
  ff::pipeline p;
  p.add_stage(std::make_unique<int_source>(10));
  p.add_stage(ff::make_node([](auto&, ff::token t) -> ff::outcome {
    if (t.template as<int>() == 5) throw std::runtime_error("boom");
    return ff::outcome::more;
  }));
  EXPECT_THROW(p.run_and_wait(), std::runtime_error);
}

TEST(Network, CannotMutateAfterRun) {
  ff::network net;
  std::vector<int> got;
  auto* a = net.emplace<int_source>(1);
  auto* b = net.emplace<int_sink>(&got);
  net.connect(a, b);
  net.run();
  EXPECT_THROW(net.add(std::make_unique<int_source>(1)), util::precondition_error);
  net.wait();
}

TEST(Network, BroadcastRejectsPayloads) {
  // Broadcast is for control tokens only; a payload must throw inside the
  // node thread and surface at wait().
  ff::network net;
  auto* src = net.add(ff::make_node([sent = false](auto& self, ff::token) mutable {
    if (sent) return ff::outcome::end;
    sent = true;
    self.send_out(ff::token::of(1));
    return ff::outcome::more;
  }));
  src->set_out_policy(ff::out_policy::broadcast);
  std::vector<int> got;
  auto* sink = net.emplace<int_sink>(&got);
  net.connect(src, sink);
  net.run();
  EXPECT_THROW(net.wait(), util::precondition_error);
}

}  // namespace
