#include "simt/executor.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace simt {

kernel_stats kernel_makespan(std::span<const double> lane_seconds,
                             const device_spec& dev, double path_divergence) {
  kernel_stats st;
  st.warp_size = dev.warp_size;
  if (lane_seconds.empty()) return st;
  util::expects(dev.warp_size > 0 && dev.concurrent_warps > 0,
                "degenerate device");
  util::expects(path_divergence >= 0.0 && path_divergence <= 1.0,
                "path_divergence must be in [0,1]");

  // Pack lanes into warps in index order; a warp runs at least as long as
  // its slowest lane (load divergence), plus the serialised share of the
  // other lanes' work when instruction paths diverge.
  std::vector<double> warp_time;
  for (std::size_t i = 0; i < lane_seconds.size(); i += dev.warp_size) {
    const std::size_t end = std::min(lane_seconds.size(),
                                     i + static_cast<std::size_t>(dev.warp_size));
    double wmax = 0.0;
    double wsum = 0.0;
    for (std::size_t l = i; l < end; ++l) {
      util::expects(lane_seconds[l] >= 0.0, "negative lane time");
      st.busy_lane_seconds += lane_seconds[l];
      wsum += lane_seconds[l];
      wmax = std::max(wmax, lane_seconds[l]);
    }
    const double wt = wmax + path_divergence * (wsum - wmax);
    warp_time.push_back(wt);
    st.busy_warp_seconds += wt;
  }
  st.warps = static_cast<std::uint32_t>(warp_time.size());

  // List-schedule warps (in order) onto the concurrent warp slots: a
  // min-heap of slot finish times.
  std::priority_queue<double, std::vector<double>, std::greater<>> slots;
  double makespan = 0.0;
  for (const double wt : warp_time) {
    double start = 0.0;
    if (slots.size() >= dev.concurrent_warps) {
      start = slots.top();
      slots.pop();
    }
    const double finish = start + wt;
    slots.push(finish);
    makespan = std::max(makespan, finish);
  }
  st.device_seconds = makespan + dev.kernel_launch_s;
  return st;
}

}  // namespace simt
