// Wire codecs for the pipeline messages that cross host boundaries in the
// distributed deployment: per-quantum sample batches (worker -> master
// alignment stage), completion notices (worker -> master scheduler), and
// the elastic-scheduling control plane — work requests/grants pulled by
// hosts at their observed throughput, plus the per-quantum checkpoint
// frames (quantum_result) that make re-issue after a host failure cost
// only the in-flight quantum.
#pragma once

#include "core/config.hpp"
#include "core/messages.hpp"
#include "dist/archive.hpp"

namespace dist {

/// Message kind tag prepended by the distributed simulator so a single
/// channel can carry heterogeneous traffic.
enum class wire_tag : std::uint8_t {
  sample_batch = 1,
  task_done = 2,
  quantum_trace = 3,
  // ---- elastic scheduling control plane ----
  work_request = 4,    ///< host -> master: an idle worker pulls work
  work_grant = 5,      ///< master -> host: run one trajectory's quanta
  quantum_result = 6,  ///< host -> master: one quantum + its checkpoint
  shutdown = 7,        ///< master -> host: campaign over, drain and exit
};

/// Host -> master: worker (`host`, `worker`) is idle and pulls the next
/// grant. At-least-once: a worker whose grant was lost re-sends after a
/// bounded wait, and the master's exactly-once accounting absorbs any
/// duplicate grants that result.
struct work_request {
  std::uint32_t host = 0;
  std::uint32_t worker = 0;
};

/// Master -> host: advance `trajectory_id`, resuming at quantum
/// `resume_quantum` (0 = fresh trajectory). Because every engine is a pure
/// function of (seed, trajectory_id), ANY host resumes deterministically:
/// it replays quanta [0, resume_quantum) locally without emitting, then
/// streams results from the checkpoint onward.
struct work_grant {
  std::uint64_t trajectory_id = 0;
  std::uint64_t resume_quantum = 0;
};

/// Host -> master: one executed quantum — samples AND the per-trajectory
/// progress checkpoint in one atomic frame (schema-versioned). Coupling
/// them means a lost/dropped message loses the whole quantum: the master
/// can never ingest samples without advancing the checkpoint, nor advance
/// the checkpoint past samples it never saw. The master accepts a frame
/// only when `quantum_index` equals the trajectory's acked high-water
/// mark, which makes accounting exactly-once under re-issue, duplication,
/// and loss.
struct quantum_result {
  std::uint32_t host = 0;           ///< executing host (per-host stats)
  std::uint64_t trajectory_id = 0;
  std::uint64_t quantum_index = 0;
  double time = 0.0;                ///< engine time after this quantum
  std::uint64_t steps = 0;          ///< cumulative SSA steps
  bool finished = false;            ///< trajectory reached t_end
  std::vector<cwc::trajectory_sample> samples;
  bool has_record = false;          ///< capture_trace runs only
  cwcsim::quantum_record record{};
};

// Streaming forms: append to / read from an open archive, so callers can
// frame messages (tag + payload) without re-copying the encoded bytes.
void write_sample_batch(archive_writer& w, const cwcsim::sample_batch& b);
cwcsim::sample_batch read_sample_batch(archive_reader& r);
void write_task_done(archive_writer& w, const cwcsim::task_done& d);
cwcsim::task_done read_task_done(archive_reader& r);
void write_quantum_record(archive_writer& w, const cwcsim::quantum_record& q);
cwcsim::quantum_record read_quantum_record(archive_reader& r);

void write_work_request(archive_writer& w, const work_request& rq);
work_request read_work_request(archive_reader& r);
void write_work_grant(archive_writer& w, const work_grant& g);
work_grant read_work_grant(archive_reader& r);
/// quantum_result frames carry the archive schema header (they are the
/// checkpoint format a resuming master must be able to trust); read_
/// throws schema_mismatch_error on a frame from a foreign build.
void write_quantum_result(archive_writer& w, const quantum_result& q);
quantum_result read_quantum_result(archive_reader& r);

// Analysis-result and configuration codecs, used by the run-server layer
// (svc/proto.hpp) to stream per-tenant windows back to clients and to
// carry a whole run request in one frame. Summaries round-trip bit-exactly:
// welford accumulators ship their raw state (stats::welford_state), never
// derived quantities.
void write_window_summary(archive_writer& w, const cwcsim::window_summary& s);
cwcsim::window_summary read_window_summary(archive_reader& r);
void write_sim_config(archive_writer& w, const cwcsim::sim_config& cfg);
cwcsim::sim_config read_sim_config(archive_reader& r);

// Whole-buffer convenience forms.
byte_buffer encode_sample_batch(const cwcsim::sample_batch& b);
cwcsim::sample_batch decode_sample_batch(const byte_buffer& bytes);

byte_buffer encode_task_done(const cwcsim::task_done& d);
cwcsim::task_done decode_task_done(const byte_buffer& bytes);

byte_buffer encode_quantum_result(const quantum_result& q);
quantum_result decode_quantum_result(const byte_buffer& bytes);

}  // namespace dist
