// Tests for the unified streaming run API (core/session.hpp): one
// run_builder program swapping backends, on-line window subscription
// bit-exact with the batch results, ordered delivery, cooperative
// cancellation, centralized validation, and the sampling-grid hardening.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/cwcsim.hpp"
#include "dist/dist.hpp"
#include "models/models.hpp"
#include "simt/simt.hpp"

namespace {

cwcsim::sim_config small_config() {
  cwcsim::sim_config cfg;
  cfg.num_trajectories = 12;
  cfg.t_end = 12.0;
  cfg.sample_period = 0.5;
  cfg.quantum = 3.0;
  cfg.sim_workers = 2;
  cfg.stat_engines = 2;
  cfg.window_size = 5;
  cfg.window_slide = 5;
  cfg.kmeans_k = 2;
  cfg.seed = 4321;
  return cfg;
}

void expect_windows_bitexact(const std::vector<cwcsim::window_summary>& a,
                             const std::vector<cwcsim::window_summary>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].first_sample, b[i].first_sample) << "window " << i;
    ASSERT_EQ(a[i].cuts.size(), b[i].cuts.size()) << "window " << i;
    for (std::size_t c = 0; c < a[i].cuts.size(); ++c) {
      const auto& x = a[i].cuts[c];
      const auto& y = b[i].cuts[c];
      ASSERT_EQ(x.sample_index, y.sample_index);
      ASSERT_DOUBLE_EQ(x.time, y.time);
      ASSERT_EQ(x.moments.size(), y.moments.size());
      for (std::size_t d = 0; d < x.moments.size(); ++d) {
        ASSERT_DOUBLE_EQ(x.moments[d].mean(), y.moments[d].mean())
            << "window " << i << " cut " << c << " dim " << d;
        ASSERT_DOUBLE_EQ(x.moments[d].variance(), y.moments[d].variance());
      }
      ASSERT_EQ(x.medians, y.medians);
    }
  }
}

// The acceptance criterion of the redesign: a single run_builder program
// executes the same model on all three backends by swapping only the
// backend argument, receives windows through on_window before wait()
// returns, and the stream is bit-exact with the batch cwcsim::simulate().
TEST(Session, OneProgramThreeBackendsBitExactStreams) {
  const auto m = models::make_neurospora_cwc({});
  const auto cfg = small_config();
  const auto batch = cwcsim::simulate(m, cfg);
  ASSERT_FALSE(batch.windows.empty());

  auto run_on = [&](cwcsim::backend b) {
    std::vector<cwcsim::window_summary> streamed;
    std::atomic<bool> wait_returned{false};
    auto s = cwcsim::run_builder()
                 .model(m)
                 .config(cfg)
                 .backend(std::move(b))
                 .open();
    s.on_window([&](const cwcsim::window_summary& w) {
      EXPECT_FALSE(wait_returned.load());
      streamed.push_back(w);
    });
    auto report = s.wait();
    wait_returned.store(true);
    // The collected report stream and the subscriber stream are the same.
    expect_windows_bitexact(streamed, report.result.windows);
    return report;
  };

  const auto mc = run_on(cwcsim::multicore{});
  const auto dc = run_on(cwcsim::distributed{3, 2});
  const auto gc = run_on(cwcsim::gpu{simt::devices::tesla_k40()});
  // The batched deployments (SoA lockstep lanes) must produce the exact
  // same stream: lane exactness makes batching a scheduling detail.
  const auto mb = run_on(cwcsim::multicore{/*batch_width=*/4});
  const auto gb =
      run_on(cwcsim::gpu{simt::devices::tesla_k40(), 25.0, /*batch_width=*/5});

  expect_windows_bitexact(mc.result.windows, batch.windows);
  expect_windows_bitexact(dc.result.windows, batch.windows);
  expect_windows_bitexact(gc.result.windows, batch.windows);
  expect_windows_bitexact(mb.result.windows, batch.windows);
  expect_windows_bitexact(gb.result.windows, batch.windows);
  EXPECT_EQ(mb.result.completions.size(), cfg.num_trajectories);
  EXPECT_EQ(gb.result.completions.size(), cfg.num_trajectories);
  ASSERT_TRUE(gb.device.has_value());
  EXPECT_GT(gb.device->kernels, 0u);

  EXPECT_EQ(mc.backend, "multicore");
  EXPECT_EQ(dc.backend, "distributed");
  EXPECT_EQ(gc.backend, "gpu");
  EXPECT_FALSE(mc.stopped);

  // Structured per-backend extras.
  EXPECT_FALSE(mc.network.has_value());
  EXPECT_FALSE(mc.device.has_value());
  ASSERT_TRUE(dc.network.has_value());
  EXPECT_GT(dc.network->messages, 0u);
  EXPECT_GT(dc.network->bytes, 0.0);
  ASSERT_TRUE(gc.device.has_value());
  EXPECT_GT(gc.device->kernels, 0u);
  EXPECT_GE(gc.device->divergence_factor, 1.0);

  // Completions stream on every backend.
  EXPECT_EQ(mc.result.completions.size(), cfg.num_trajectories);
  EXPECT_EQ(dc.result.completions.size(), cfg.num_trajectories);
  EXPECT_EQ(gc.result.completions.size(), cfg.num_trajectories);
}

TEST(Session, CallbacksArriveInTimeOrderWithProgress) {
  const auto m = models::make_neurospora_cwc({});
  const auto cfg = small_config();

  std::vector<std::uint64_t> first_samples;
  std::uint64_t done_events = 0;
  std::uint64_t last_progress_done = 0;
  std::uint64_t last_progress_windows = 0;

  auto s = cwcsim::run_builder().model(m).config(cfg).open();
  s.on_window([&](const cwcsim::window_summary& w) {
      first_samples.push_back(w.first_sample);
    })
      .on_trajectory_done([&](const cwcsim::task_done& d) {
        EXPECT_LT(d.trajectory_id, cfg.num_trajectories);
        ++done_events;
      })
      .on_progress([&](const cwcsim::progress& p) {
        EXPECT_EQ(p.trajectories_total, cfg.num_trajectories);
        EXPECT_GE(p.trajectories_done, last_progress_done);
        EXPECT_GE(p.windows_emitted, last_progress_windows);
        last_progress_done = p.trajectories_done;
        last_progress_windows = p.windows_emitted;
      });
  const auto report = s.wait();

  // Windows arrive in strict time order, spaced by the slide.
  ASSERT_EQ(first_samples.size(), report.result.windows.size());
  for (std::size_t i = 0; i + 1 < first_samples.size(); ++i)
    EXPECT_EQ(first_samples[i + 1] - first_samples[i], cfg.window_slide);

  EXPECT_EQ(done_events, cfg.num_trajectories);
  EXPECT_EQ(last_progress_done, cfg.num_trajectories);
  EXPECT_EQ(last_progress_windows, report.result.windows.size());
}

class session_stop_test : public ::testing::TestWithParam<cwcsim::backend> {};

TEST_P(session_stop_test, RequestStopMidRunYieldsPartialReport) {
  const auto m = models::make_neurospora_cwc({});
  auto cfg = small_config();
  cfg.t_end = 200.0;  // long campaign: ~100 windows if left alone
  cfg.window_size = 4;
  cfg.window_slide = 4;
  cfg.kmeans_k = 0;

  auto s = cwcsim::run_builder()
               .model(m)
               .config(cfg)
               .backend(GetParam())
               .open();
  std::uint64_t windows_seen = 0;
  s.on_window([&](const cwcsim::window_summary&) {
    if (++windows_seen == 2) s.request_stop();
  });
  const auto report = s.wait();

  EXPECT_TRUE(report.stopped);
  EXPECT_GE(windows_seen, 2u);
  // Far fewer windows than the full campaign, and incomplete trajectories.
  EXPECT_LT(report.result.windows.size(),
            cfg.num_samples() / cfg.window_slide);
  EXPECT_LT(report.result.completions.size(), cfg.num_trajectories);
  // The partial stream is still ordered and self-consistent.
  for (std::size_t i = 0; i + 1 < report.result.windows.size(); ++i)
    EXPECT_EQ(report.result.windows[i + 1].first_sample -
                  report.result.windows[i].first_sample,
              cfg.window_slide);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, session_stop_test,
    ::testing::Values(
        cwcsim::backend{cwcsim::multicore{}},
        cwcsim::backend{cwcsim::distributed{2, 2}},
        cwcsim::backend{cwcsim::gpu{simt::devices::laptop_gpu()}},
        // Batched deployments: stop must be honoured at the quantum
        // (kernel) boundary, leaving a partial but ordered stream.
        cwcsim::backend{cwcsim::multicore{/*batch_width=*/4}},
        cwcsim::backend{cwcsim::gpu{simt::devices::laptop_gpu(), 25.0,
                                    /*batch_width=*/4}}));

TEST(Session, StopBeforeStartDrainsImmediately) {
  const auto m = models::make_neurospora_cwc({});
  auto s = cwcsim::run_builder().model(m).config(small_config()).open();
  s.request_stop();
  const auto report = s.wait();
  EXPECT_TRUE(report.stopped);
  EXPECT_TRUE(report.result.windows.empty());
  EXPECT_TRUE(report.result.completions.empty());
}

TEST(Session, RequestStopIsIdempotentAndSafeAfterWait) {
  const auto m = models::make_neurospora_cwc({});
  auto cfg = small_config();
  cfg.num_trajectories = 2;
  cfg.t_end = 2.0;
  auto s = cwcsim::run_builder().model(m).config(cfg).open();

  // Idempotent before start...
  s.request_stop();
  s.request_stop();
  EXPECT_FALSE(s.started());

  // ...and still callable after wait() returned (a subscriber or watchdog
  // firing late must not crash the program).
  const auto report = s.wait();
  EXPECT_TRUE(report.stopped);
  s.request_stop();
  s.request_stop();

  // A moved-from handle degrades to a no-op, not a null dereference.
  auto s2 = std::move(s);
  s.request_stop();  // NOLINT(bugprone-use-after-move): the documented contract
  EXPECT_FALSE(s.started());
  s2.request_stop();
}

TEST(Session, SubscriptionAfterStartIsRejected) {
  const auto m = models::make_neurospora_cwc({});
  auto cfg = small_config();
  cfg.num_trajectories = 2;
  cfg.t_end = 2.0;
  auto s = cwcsim::run_builder().model(m).config(cfg).open();
  s.start();
  EXPECT_THROW(s.on_window([](const cwcsim::window_summary&) {}),
               util::precondition_error);
  (void)s.wait();
}

TEST(Session, RunFacadeMatchesBatchHelper) {
  const auto net = models::make_birth_death({});
  auto cfg = small_config();
  cfg.t_end = 6.0;
  cfg.kmeans_k = 0;
  const auto report = cwcsim::run(net, cfg);
  const auto batch = cwcsim::simulate(net, cfg);
  expect_windows_bitexact(report.result.windows, batch.windows);
  EXPECT_EQ(report.backend, "multicore");
}

// ------------------------- centralized validation -------------------------

TEST(Validate, RejectsDegenerateKnobsWithTypedDiagnostics) {
  const auto base = small_config();

  auto field_of = [](cwcsim::sim_config cfg) -> std::string {
    try {
      cwcsim::validate(cfg);
    } catch (const cwcsim::config_error& e) {
      return e.field();
    }
    return "";
  };

  auto cfg = base;
  cfg.sim_workers = 0;
  EXPECT_EQ(field_of(cfg), "sim_workers");

  cfg = base;
  cfg.window_slide = 0;
  EXPECT_EQ(field_of(cfg), "window_slide");

  cfg = base;
  cfg.window_size = 4;
  cfg.window_slide = 5;  // would skip cuts
  EXPECT_EQ(field_of(cfg), "window_slide");

  cfg = base;
  cfg.sample_period = 0.0;
  EXPECT_EQ(field_of(cfg), "sample_period");

  cfg = base;
  cfg.num_trajectories = 0;
  EXPECT_EQ(field_of(cfg), "num_trajectories");

  // Backend-specific checks flow through the same entry point.
  EXPECT_THROW(cwcsim::validate(base, cwcsim::distributed{0, 2}),
               cwcsim::config_error);
  EXPECT_THROW(cwcsim::validate(base, cwcsim::distributed{2, 0}),
               cwcsim::config_error);

  // config_error stays catchable as the historical precondition_error.
  EXPECT_THROW(cwcsim::validate(base, cwcsim::distributed{0, 2}),
               util::precondition_error);
}

TEST(Validate, BuilderRejectsBeforeLaunch) {
  const auto m = models::make_neurospora_cwc({});
  auto cfg = small_config();
  cfg.window_slide = 0;
  EXPECT_THROW(cwcsim::run_builder().model(m).config(cfg).open(),
               cwcsim::config_error);
  EXPECT_THROW(cwcsim::run_builder().config(small_config()).open(),
               cwcsim::config_error);  // no model
}

// --------------------------- sampling-grid hardening ----------------------

TEST(Config, NumSamplesSurvivesFloatingPointTruncation) {
  cwcsim::sim_config cfg;
  cfg.t_end = 30.0;
  cfg.sample_period = 0.1;  // 30 / 0.1 lands at 299.999… in binary
  EXPECT_EQ(cfg.num_samples(), 301u);

  cfg.sample_period = 0.5;
  EXPECT_EQ(cfg.num_samples(), 61u);

  cfg.t_end = 1.9;  // genuinely off-grid horizon: last sample at 1.5
  EXPECT_EQ(cfg.num_samples(), 4u);
}

TEST(Config, EnginesEmitExactlyNumSamplesOnAwkwardGrids) {
  // End-to-end agreement between sim_config::num_samples() and what the
  // engines actually emit on a grid where naive truncation loses a point.
  const auto net = models::make_birth_death({});
  cwcsim::sim_config cfg;
  cfg.num_trajectories = 4;
  cfg.t_end = 3.0;
  cfg.sample_period = 0.1;
  cfg.quantum = 1.0;
  cfg.sim_workers = 2;
  cfg.window_size = 8;
  cfg.window_slide = 8;
  cfg.kmeans_k = 0;
  EXPECT_EQ(cfg.num_samples(), 31u);
  const auto res = cwcsim::simulate(net, cfg);
  EXPECT_EQ(res.all_cuts().size(), cfg.num_samples());
}

}  // namespace
