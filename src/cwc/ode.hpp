// Deterministic baseline: fixed-step RK4 integration. The paper positions
// stochastic simulation against ODE modelling (§I); we provide the ODE side
// both for validation (SSA ensemble mean ≈ ODE for large copy numbers) and
// for the Neurospora reference dynamics (Leloup-Gonze-Goldbeter 1999).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "cwc/gillespie.hpp"  // trajectory_sample
#include "cwc/reaction_network.hpp"

namespace cwc {

/// dy/dt = f(t, y) -> dydt (spans have equal extent).
using deriv_fn =
    std::function<void(double, std::span<const double>, std::span<double>)>;

/// Integrate with classic RK4 from t0 to t1 (step dt), recording the state
/// at every multiple of sample_period (including t0).
std::vector<trajectory_sample> rk4_integrate(const deriv_fn& f,
                                             std::vector<double> y0, double t0,
                                             double t1, double dt,
                                             double sample_period);

/// Mass-action / MM / Hill deterministic rate equations for a flat network,
/// in copy-number space (valid for large populations). Non-mass-action laws
/// are evaluated on the current continuous state.
deriv_fn make_deriv(const reaction_network& net);

}  // namespace cwc
