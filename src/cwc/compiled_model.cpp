#include "cwc/compiled_model.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cwc {

namespace {

// ---- species-footprint kernel ----------------------------------------
// The one audited implementation of "does firing j change what k reads":
// per-rule/per-reaction species sets are dense char bitmaps, dependency
// means a written bit intersects a read bit (or the reader's rate law is
// non-mass-action and conservatively reads everything). Both the tree
// engine's redo lists and the flat next-reaction graph are derived from
// these three primitives.

void mark(std::vector<char>& bits, const multiset& ms) {
  const std::size_t n = bits.size();
  ms.for_each([&](species_id s, std::uint64_t) {
    if (s < n) bits[s] = 1;
  });
}

bool intersects(const std::vector<char>& a, const std::vector<char>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i)
    if (a[i] != 0 && b[i] != 0) return true;
  return false;
}

bool any_bit(const std::vector<char>& a) {
  for (char c : a)
    if (c != 0) return true;
  return false;
}

}  // namespace

std::atomic<std::uint64_t> compiled_model::compiles_{0};

std::shared_ptr<const compiled_model> compiled_model::finish(
    std::shared_ptr<compiled_model> cm) {
  compiles_.fetch_add(1, std::memory_order_relaxed);
  if (cm->tree_ != nullptr) {
    cm->build_tree_tables();
  } else {
    cm->build_flat_tables();
  }
  return cm;
}

std::shared_ptr<const compiled_model> compiled_model::overlay(
    std::shared_ptr<const compiled_model> base,
    const std::vector<rate_override>& overrides) {
  util::expects(base != nullptr, "overlay requires a base artifact");
  auto ov = std::shared_ptr<compiled_model>(new compiled_model());
  // Collapse overlay-of-overlay chains: tables always route to the
  // structural root, whose lifetime `base` (transitively) guarantees.
  ov->tables_ = base->tables_;

  if (base->is_tree()) {
    ov->tree_ = base->tree_;
    // Start from base's (possibly already overlaid) rules and tape so
    // stacked overlays compose; both are small flat copies — the shared
    // dependency index and plans above are never touched.
    ov->overlay_rules_.emplace(base->rules());
    ov->tape_ = base->tape_;
    for (const auto& [name, value] : overrides) {
      bool found = false;
      for (std::size_t j = 0; j < ov->overlay_rules_->size(); ++j) {
        rule& r = (*ov->overlay_rules_)[j];
        if (r.name() != name) continue;
        r = r.with_law(r.law().with_constant(value, name));
        ov->tape_.patch_constant(j, value);
        found = true;
      }
      if (!found)
        throw overlay_error(name, "no rule with this name in the model");
    }
  } else {
    // Flat overlay: the reaction table IS the per-cell state, so patch an
    // owned copy; the Gibson-Bruck dependency graph still routes to the
    // root (constants cannot change the species footprint).
    ov->owned_flat_.emplace(*base->flat_);
    ov->flat_ = &*ov->owned_flat_;
    for (const auto& [name, value] : overrides) {
      bool found = false;
      for (reaction& rx : ov->owned_flat_->reactions_mut()) {
        if (rx.name != name) continue;
        rx.law = rx.law.with_constant(value, name);
        found = true;
      }
      if (!found)
        throw overlay_error(name, "no reaction with this name in the network");
    }
  }
  ov->base_ = std::move(base);
  return ov;
}

std::shared_ptr<const compiled_model> compiled_model::compile(const model& m) {
  auto cm = std::shared_ptr<compiled_model>(new compiled_model());
  cm->tree_ = &m;
  return finish(std::move(cm));
}

std::shared_ptr<const compiled_model> compiled_model::compile(model&& m) {
  auto cm = std::shared_ptr<compiled_model>(new compiled_model());
  cm->owned_tree_.emplace(std::move(m));
  cm->tree_ = &*cm->owned_tree_;
  return finish(std::move(cm));
}

std::shared_ptr<const compiled_model> compiled_model::compile(
    const reaction_network& n) {
  auto cm = std::shared_ptr<compiled_model>(new compiled_model());
  cm->flat_ = &n;
  return finish(std::move(cm));
}

std::shared_ptr<const compiled_model> compiled_model::compile(
    reaction_network&& n) {
  auto cm = std::shared_ptr<compiled_model>(new compiled_model());
  cm->owned_flat_.emplace(std::move(n));
  cm->flat_ = &*cm->owned_flat_;
  return finish(std::move(cm));
}

std::size_t compiled_model::num_rules() const noexcept {
  return tree_ != nullptr ? rules().size() : flat_->reactions().size();
}

std::size_t compiled_model::num_species() const noexcept {
  return tree_ != nullptr ? tree_->species().size() : flat_->num_species();
}

std::size_t compiled_model::num_observables() const noexcept {
  return tree_ != nullptr ? tree_->observables().size() : flat_->num_species();
}

void compiled_model::build_tree_tables() {
  tape_ = rate_tape::compile(*tree_);
  const auto& rules = tree_->rules();
  const std::size_t num_rules = rules.size();
  const std::size_t num_types = tree_->compartment_types().size();
  const std::size_t num_species = tree_->species().size();

  // Applicable-rule lists and rule -> slot maps, per compartment type.
  rules_for_type_.assign(num_types, {});
  slot_of_.assign(num_types, std::vector<std::int32_t>(num_rules, -1));
  for (std::size_t t = 0; t < num_types; ++t) {
    for (std::size_t j = 0; j < num_rules; ++j) {
      if (!rules[j].applies_in(static_cast<comp_type_id>(t))) continue;
      slot_of_[t][j] = static_cast<std::int32_t>(rules_for_type_[t].size());
      rules_for_type_[t].push_back(static_cast<std::uint32_t>(j));
    }
  }

  // Per-rule species footprints. A species bitmap per channel:
  //   w_local : host content the rule writes (reactants + products;
  //             dissolve releases arbitrary child content -> writes all)
  //   w_child : bound-child content the rule writes (consumed + produced)
  //   r_local : host content a mass-action rule reads (reactants)
  //   r_child : bound-child content a mass-action rule reads (content_req;
  //             wraps are immutable after creation, so wrap_req never
  //             invalidates)
  // Non-mass-action laws (MM/Hill/custom) read driver counts the footprint
  // cannot see, so they conservatively depend on every rule — the same
  // fallback the flat next-reaction graph below uses.
  std::vector<std::vector<char>> w_local(num_rules,
                                         std::vector<char>(num_species, 0));
  std::vector<std::vector<char>> w_child(num_rules,
                                         std::vector<char>(num_species, 0));
  std::vector<std::vector<char>> r_local(num_rules,
                                         std::vector<char>(num_species, 0));
  std::vector<std::vector<char>> r_child(num_rules,
                                         std::vector<char>(num_species, 0));
  std::vector<char> w_local_all(num_rules, 0);
  std::vector<char> structural(num_rules, 0);
  std::vector<char> conservative(num_rules, 0);
  writes_host_.assign(num_rules, 0);
  writes_child_.assign(num_rules, 0);

  for (std::size_t j = 0; j < num_rules; ++j) {
    const rule& r = rules[j];
    mark(w_local[j], r.reactants());
    mark(w_local[j], r.products());
    mark(r_local[j], r.reactants());
    if (r.child_pattern().has_value()) {
      mark(w_child[j], r.child_pattern()->content_req);
      mark(w_child[j], r.child_products());
      mark(r_child[j], r.child_pattern()->content_req);
    }
    conservative[j] = r.law().is_mass_action() ? 0 : 1;
    structural[j] =
        (!r.new_compartments().empty() || r.fate() != child_fate::keep) ? 1 : 0;
    if (r.fate() == child_fate::dissolve) w_local_all[j] = 1;
    writes_host_[j] = (!r.reactants().is_empty() || !r.products().is_empty() ||
                       r.fate() == child_fate::dissolve)
                          ? 1
                          : 0;
    writes_child_[j] = (r.child_pattern().has_value() &&
                        r.fate() == child_fate::keep &&
                        (!r.child_pattern()->content_req.is_empty() ||
                         !r.child_products().is_empty()))
                           ? 1
                           : 0;
  }

  // Dependency lists: after rule j fires, which rules must be re-enumerated
  // in the host block, the bound child's block, and the host's parent block.
  redo_host_.assign(num_rules, {});
  redo_child_.assign(num_rules, {});
  redo_parent_.assign(num_rules, {});
  for (std::size_t j = 0; j < num_rules; ++j) {
    for (std::size_t k = 0; k < num_rules; ++k) {
      const bool k_child = rules[k].child_pattern().has_value();
      const bool local_hit =
          (w_local_all[j] != 0 && any_bit(r_local[k])) ||
          intersects(r_local[k], w_local[j]);
      const bool child_hit =
          k_child && (structural[j] != 0 || intersects(r_child[k], w_child[j]));
      if (conservative[k] != 0 || local_hit || child_hit)
        redo_host_[j].push_back(static_cast<std::uint32_t>(k));
      if (conservative[k] != 0 || intersects(r_local[k], w_child[j]))
        redo_child_[j].push_back(static_cast<std::uint32_t>(k));
      const bool parent_hit =
          k_child && ((w_local_all[j] != 0 && any_bit(r_child[k])) ||
                      intersects(r_child[k], w_local[j]));
      if (conservative[k] != 0 || parent_hit)
        redo_parent_[j].push_back(static_cast<std::uint32_t>(k));
    }
  }

  // Observable evaluation plans: indices only, evaluated in one walk.
  observables_.reserve(tree_->observables().size());
  for (const observable& o : tree_->observables()) {
    observable_plan p;
    p.sp = o.sp;
    p.scoped = o.scope.has_value();
    p.scope = p.scoped ? *o.scope : 0;
    observables_.push_back(p);
  }
}

void compiled_model::build_flat_tables() {
  const auto& reactions = flat_->reactions();
  const std::size_t r = reactions.size();
  const std::size_t num_species = flat_->num_species();

  // Species a reaction writes (reactants + products) and reads
  // (reactants); non-mass-action laws (MM/Hill/custom) read driver counts
  // the stoichiometry cannot see, so they conservatively read everything.
  std::vector<std::vector<char>> writes(r, std::vector<char>(num_species, 0));
  std::vector<std::vector<char>> reads(r, std::vector<char>(num_species, 0));
  std::vector<char> reads_everything(r, 0);
  for (std::size_t j = 0; j < r; ++j) {
    for (const stoich& s : reactions[j].reactants) {
      if (s.sp < num_species) {
        reads[j][s.sp] = 1;
        writes[j][s.sp] = 1;
      }
    }
    for (const stoich& s : reactions[j].products)
      if (s.sp < num_species) writes[j][s.sp] = 1;
    reads_everything[j] = reactions[j].law.is_mass_action() ? 0 : 1;
  }

  depends_.assign(r, {});
  for (std::size_t j = 0; j < r; ++j) {
    for (std::size_t k = 0; k < r; ++k) {
      if (k == j) continue;  // the fired reaction redraws its own clock
      if (reads_everything[k] != 0 || intersects(writes[j], reads[k]))
        depends_[j].push_back(static_cast<std::uint32_t>(k));
    }
  }
}

void compiled_model::observe_all(const term& state,
                                 std::vector<std::uint64_t>& scratch,
                                 std::vector<double>& out) const {
  util::expects(tree_ != nullptr, "observable plans need a tree model");
  const auto& observables = tables_->observables_;
  scratch.assign(observables.size(), 0);
  state.visit([&](const compartment& c) {
    for (std::size_t i = 0; i < observables.size(); ++i) {
      const observable_plan& p = observables[i];
      if (!p.scoped) {
        scratch[i] += c.content().count(p.sp) + c.wrap().count(p.sp);
      } else if (c.type() == p.scope) {
        scratch[i] += c.content().count(p.sp);
      }
    }
  });
  out.clear();
  out.reserve(observables.size());
  for (const std::uint64_t v : scratch) out.push_back(static_cast<double>(v));
}

}  // namespace cwc
