// DES model of the analysis pipeline back-end (alignment counters +
// sliding-window statistics farm). Shared by the multicore, cluster, and
// SIMT/GPU platform models.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "des/platforms.hpp"
#include "des/resource.hpp"
#include "des/trace.hpp"

namespace des {

struct sim_outcome;

/// Counts per-cut contributions, releases completed cuts, groups them into
/// statistics jobs (window_size cuts every window_slide completions —
/// overlapping when slide < size), and executes the jobs on a CPU resource
/// bounded by the stat-farm concurrency.
class analysis_model {
 public:
  analysis_model(resource& cpu, const workload& w, const calibration& cal,
                 const host_spec& host, unsigned stat_engines,
                 std::size_t window_size, std::size_t window_slide,
                 sim_outcome& out);

  /// Samples [first, first+count) of one trajectory reached the aligner.
  void deliver(std::uint64_t first_sample, std::uint32_t count);

  /// CPU time to ingest `samples` samples into the alignment buffer.
  double align_cost(std::uint32_t samples) const;

 private:
  void enqueue_job(std::size_t cuts) { job_queue_.push_back(cuts); }
  void pump();

  resource* cpu_;
  const workload* w_;
  const calibration* cal_;
  const host_spec* host_;
  unsigned stat_free_;
  std::size_t window_size_;
  std::size_t window_slide_;
  sim_outcome* out_;
  std::vector<std::uint32_t> cut_filled_;
  std::size_t ready_cuts_ = 0;
  std::size_t since_last_window_ = 0;
  std::deque<std::size_t> job_queue_;
};

}  // namespace des
