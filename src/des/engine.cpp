#include "des/engine.hpp"

#include "util/check.hpp"

namespace des {

void engine::at(double t, handler h) {
  util::expects(t >= now_, "cannot schedule an event in the past");
  q_.push(event{t, seq_++, std::move(h)});
}

double engine::run() {
  while (!q_.empty()) {
    // Moving out of a priority_queue top requires a const_cast dance; copy
    // the POD parts and move the handler via extraction into a local.
    event e = std::move(const_cast<event&>(q_.top()));
    q_.pop();
    now_ = e.t;
    ++executed_;
    e.h();
  }
  return now_;
}

}  // namespace des
