// The session facade: backend-variant dispatch, event delivery, and the
// worker thread that lets subscribers consume windows while the run is in
// flight. Compiled into the cwcsim umbrella library — the one layer that
// sits above every backend — so detail::make_driver can reach the
// distributed and GPU runtimes without inverting the module graph.
#include "core/session.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "util/check.hpp"

namespace cwcsim {

namespace detail {

std::unique_ptr<backend_driver> make_driver(const model_ref& model,
                                            const sim_config& cfg,
                                            const backend& b) {
  struct dispatch {
    const model_ref& model;
    const sim_config& cfg;
    std::unique_ptr<backend_driver> operator()(const multicore& m) const {
      return make_multicore_driver(model, cfg, m);
    }
    std::unique_ptr<backend_driver> operator()(const distributed& d) const {
      return make_distributed_driver(model, cfg, d);
    }
    std::unique_ptr<backend_driver> operator()(const gpu& g) const {
      return make_gpu_driver(model, cfg, g);
    }
    std::unique_ptr<backend_driver> operator()(const service& s) const {
      return make_service_driver(model, cfg, s);
    }
  };
  return std::visit(dispatch{model, cfg}, b);
}

}  // namespace detail

// ------------------------------------------------------------------ session

struct session::impl final : event_sink {
  sim_config cfg{};
  std::unique_ptr<backend_driver> driver;

  std::function<void(const window_summary&)> window_cb;
  std::function<void(const task_done&)> done_cb;
  std::function<void(const progress&)> progress_cb;

  std::mutex deliver_mu;                ///< serializes subscriber delivery
  std::vector<window_summary> windows;  ///< the collected ordered stream
  std::uint64_t completions_seen = 0;
  std::uint64_t reissued_seen = 0;  ///< elastic re-issue events observed

  std::atomic<bool> stop{false};
  std::atomic<bool> launched{false};
  bool waited = false;

  std::thread worker;
  run_report report;
  std::exception_ptr error;

  ~impl() override {
    if (worker.joinable()) {
      stop.store(true, std::memory_order_relaxed);
      worker.join();
    }
  }

  // ---- event_sink (called from backend pipeline threads) ---------------
  void window(window_summary&& w) override {
    const std::lock_guard<std::mutex> lock(deliver_mu);
    // Collect before delivering: a throwing subscriber must not lose the
    // window from the report stream it already observed.
    windows.push_back(std::move(w));
    if (window_cb) window_cb(windows.back());
    notify_progress();
  }

  void trajectory_done(const task_done& d) override {
    const std::lock_guard<std::mutex> lock(deliver_mu);
    ++completions_seen;
    if (done_cb) done_cb(d);
    notify_progress();
  }

  bool stop_requested() const noexcept override {
    return stop.load(std::memory_order_relaxed);
  }

  void quantum_reissued(std::uint64_t /*trajectory*/,
                        std::uint64_t /*from_quantum*/) override {
    const std::lock_guard<std::mutex> lock(deliver_mu);
    ++reissued_seen;
    notify_progress();
  }

  void notify_progress() {
    if (!progress_cb) return;
    progress p;
    p.trajectories_done = completions_seen;
    p.trajectories_total = cfg.num_trajectories;
    p.windows_emitted = windows.size();
    p.quanta_reissued = reissued_seen;
    progress_cb(p);
  }

  void launch() {
    util::expects(!launched.exchange(true), "session already started");
    worker = std::thread([this] {
      try {
        driver->run(*this, report);
      } catch (...) {
        error = std::current_exception();
      }
    });
  }
};

session::session(std::unique_ptr<impl> p) : p_(std::move(p)) {}
session::session(session&&) noexcept = default;
session& session::operator=(session&&) noexcept = default;
session::~session() = default;

session& session::on_window(std::function<void(const window_summary&)> cb) {
  util::expects(!p_->launched.load(), "subscribe before start()");
  p_->window_cb = std::move(cb);
  return *this;
}

session& session::on_trajectory_done(std::function<void(const task_done&)> cb) {
  util::expects(!p_->launched.load(), "subscribe before start()");
  p_->done_cb = std::move(cb);
  return *this;
}

session& session::on_progress(std::function<void(const progress&)> cb) {
  util::expects(!p_->launched.load(), "subscribe before start()");
  p_->progress_cb = std::move(cb);
  return *this;
}

void session::start() { p_->launch(); }

void session::request_stop() noexcept {
  // Idempotent and total: callable any number of times, from any thread,
  // before start(), during the run, after wait(), and on a moved-from
  // handle (where it is a no-op instead of a null dereference). The
  // stored flag is just a relaxed atomic the backend polls, so a stop
  // requested after completion is harmless.
  if (p_ == nullptr) return;
  p_->stop.store(true, std::memory_order_relaxed);
}

bool session::started() const noexcept {
  return p_ != nullptr && p_->launched.load();
}

run_report session::wait() {
  util::expects(!p_->waited, "session::wait() may be called once");
  p_->waited = true;
  if (!p_->launched.load()) p_->launch();
  p_->worker.join();
  if (p_->error) std::rethrow_exception(p_->error);

  run_report report = std::move(p_->report);
  report.backend = p_->driver->name();
  report.result.windows = std::move(p_->windows);
  report.stopped =
      p_->stop.load(std::memory_order_relaxed) &&
      report.result.completions.size() < p_->cfg.num_trajectories;
  return report;
}

// -------------------------------------------------------------- run_builder

session run_builder::open() const {
  if (model_.tree == nullptr && model_.flat == nullptr)
    throw config_error("model", "run_builder requires a model");
  validate(cfg_, backend_);

  // Compile the model once, before the farm spins up: every engine the
  // chosen backend constructs shares this one immutable artifact.
  model_ref compiled = model_;
  compiled.compile();

  auto p = std::make_unique<session::impl>();
  p->cfg = cfg_;
  p->driver = detail::make_driver(compiled, cfg_, backend_);
  return session(std::move(p));
}

// ---------------------------------------------------------------- run facade

run_report run(const cwc::model& m, const sim_config& cfg, const backend& b) {
  return run_builder().model(m).config(cfg).backend(b).open().wait();
}

run_report run(const cwc::reaction_network& n, const sim_config& cfg,
               const backend& b) {
  return run_builder().model(n).config(cfg).backend(b).open().wait();
}

}  // namespace cwcsim
