#include "util/histogram.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace util {

histogram::histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), inv_width_(0.0), counts_(bins, 0) {
  expects(lo < hi, "histogram range must be non-empty");
  expects(bins > 0, "histogram needs at least one bin");
  inv_width_ = static_cast<double>(bins) / (hi - lo);
}

void histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) * inv_width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;  // FP edge guard
  ++counts_[bin];
}

void histogram::merge(const histogram& other) {
  expects(other.lo_ == lo_ && other.hi_ == hi_ && other.counts_.size() == counts_.size(),
          "histogram merge requires identical binning");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

double histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + static_cast<double>(i) / inv_width_;
}

double histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + static_cast<double>(i + 1) / inv_width_;
}

double histogram::quantile(double q) const {
  expects(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  const std::uint64_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return lo_;
  const double target = q * static_cast<double>(in_range);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] == 0 ? 0.0 : (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * (bin_hi(i) - bin_lo(i));
    }
    cum = next;
  }
  return hi_;
}

std::string histogram::to_string(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") " << std::string(bar, '#')
       << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace util
