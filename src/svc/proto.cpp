#include "svc/proto.hpp"

#include <stdexcept>
#include <utility>

namespace svc {

namespace {

dist::archive_writer begin_frame(svc_tag tag) {
  dist::archive_writer w;
  w.put(tag);
  dist::put_schema_header(w);
  return w;
}

dist::byte_buffer encode_addressed_ack(svc_tag tag, std::uint64_t conn_id,
                                       std::uint64_t consumed_total) {
  auto w = begin_frame(tag);
  w.put<std::uint64_t>(conn_id);
  w.put<std::uint64_t>(consumed_total);
  return w.take();
}

}  // namespace

// ---- uplink ------------------------------------------------------------

dist::byte_buffer encode_open(const open_request& rq) {
  auto w = begin_frame(svc_tag::open);
  w.put<std::uint64_t>(rq.conn_id);
  w.put<double>(rq.weight);
  w.put<std::uint64_t>(rq.window_credits);
  w.put<std::uint64_t>(rq.resume_token);
  w.put<std::uint64_t>(rq.resume_next_seq);
  dist::write_sim_config(w, rq.cfg);
  w.put_vector(rq.model_frame);
  w.put<std::uint64_t>(rq.local_model);
  return w.take();
}

open_request read_open(dist::archive_reader& r) {
  open_request rq;
  rq.conn_id = r.get<std::uint64_t>();
  rq.weight = r.get<double>();
  rq.window_credits = r.get<std::uint64_t>();
  rq.resume_token = r.get<std::uint64_t>();
  rq.resume_next_seq = r.get<std::uint64_t>();
  rq.cfg = dist::read_sim_config(r);
  rq.model_frame = r.get_vector<std::byte>();
  rq.local_model = r.get<std::uint64_t>();
  return rq;
}

dist::byte_buffer encode_credit(std::uint64_t conn_id,
                                std::uint64_t consumed_total) {
  return encode_addressed_ack(svc_tag::credit, conn_id, consumed_total);
}

dist::byte_buffer encode_heartbeat(std::uint64_t conn_id,
                                   std::uint64_t consumed_total) {
  return encode_addressed_ack(svc_tag::heartbeat, conn_id, consumed_total);
}

credit_grant read_credit(dist::archive_reader& r) {
  credit_grant g;
  g.conn_id = r.get<std::uint64_t>();
  g.consumed_total = r.get<std::uint64_t>();
  return g;
}

dist::byte_buffer encode_cancel(std::uint64_t conn_id) {
  auto w = begin_frame(svc_tag::cancel);
  w.put<std::uint64_t>(conn_id);
  return w.take();
}

dist::byte_buffer encode_close(std::uint64_t conn_id) {
  auto w = begin_frame(svc_tag::close);
  w.put<std::uint64_t>(conn_id);
  return w.take();
}

std::uint64_t read_conn_id(dist::archive_reader& r) {
  return r.get<std::uint64_t>();
}

// ---- downlink ----------------------------------------------------------

dist::byte_buffer encode_open_ack(const open_ack& a) {
  auto w = begin_frame(svc_tag::open_ok);
  w.put<std::uint64_t>(a.session_id);
  w.put<std::uint64_t>(a.session_token);
  w.put<std::uint32_t>(a.pool_workers);
  w.put<std::uint64_t>(a.window_credits);
  w.put<std::uint8_t>(a.cache_hit ? 1 : 0);
  w.put<std::uint8_t>(a.resumed ? 1 : 0);
  return w.take();
}

open_ack read_open_ack(dist::archive_reader& r) {
  open_ack a;
  a.session_id = r.get<std::uint64_t>();
  a.session_token = r.get<std::uint64_t>();
  a.pool_workers = r.get<std::uint32_t>();
  a.window_credits = r.get<std::uint64_t>();
  a.cache_hit = r.get<std::uint8_t>() != 0;
  a.resumed = r.get<std::uint8_t>() != 0;
  return a;
}

dist::byte_buffer encode_open_error(const std::string& reason) {
  auto w = begin_frame(svc_tag::open_error);
  w.put_string(reason);
  return w.take();
}

std::string read_reason(dist::archive_reader& r) { return r.get_string(); }

dist::byte_buffer encode_retry_after(const shed_notice& n) {
  auto w = begin_frame(svc_tag::retry_after);
  w.put<double>(n.retry_after_s);
  w.put_string(n.reason);
  return w.take();
}

shed_notice read_retry_after(dist::archive_reader& r) {
  shed_notice n;
  n.retry_after_s = r.get<double>();
  n.reason = r.get_string();
  return n;
}

dist::byte_buffer encode_error(std::uint64_t seq, const std::string& reason) {
  auto w = begin_frame(svc_tag::error);
  w.put<std::uint64_t>(seq);
  w.put_string(reason);
  return w.take();
}

seq_error read_error(dist::archive_reader& r) {
  seq_error e;
  e.seq = r.get<std::uint64_t>();
  e.reason = r.get_string();
  return e;
}

dist::byte_buffer encode_window(std::uint64_t seq,
                                const cwcsim::window_summary& s) {
  auto w = begin_frame(svc_tag::window);
  w.put<std::uint64_t>(seq);
  dist::write_window_summary(w, s);
  return w.take();
}

seq_window read_window(dist::archive_reader& r) {
  seq_window s;
  s.seq = r.get<std::uint64_t>();
  s.window = dist::read_window_summary(r);
  return s;
}

dist::byte_buffer encode_trajectory_done(std::uint64_t seq,
                                         const cwcsim::task_done& d) {
  auto w = begin_frame(svc_tag::trajectory_done);
  w.put<std::uint64_t>(seq);
  dist::write_task_done(w, d);
  return w.take();
}

seq_task_done read_trajectory_done(dist::archive_reader& r) {
  seq_task_done d;
  d.seq = r.get<std::uint64_t>();
  d.done = dist::read_task_done(r);
  return d;
}

dist::byte_buffer encode_complete(const run_complete& c) {
  auto w = begin_frame(svc_tag::complete);
  w.put<std::uint64_t>(c.seq);
  w.put<std::uint8_t>(c.stopped ? 1 : 0);
  w.put<std::uint64_t>(c.trajectories);
  w.put<std::uint64_t>(c.quanta);
  return w.take();
}

run_complete read_complete(dist::archive_reader& r) {
  run_complete c;
  c.seq = r.get<std::uint64_t>();
  c.stopped = r.get<std::uint8_t>() != 0;
  c.trajectories = r.get<std::uint64_t>();
  c.quanta = r.get<std::uint64_t>();
  return c;
}

svc_tag read_frame_header(dist::archive_reader& r) {
  const auto tag = r.get<svc_tag>();
  if (static_cast<std::uint8_t>(tag) < 1 ||
      static_cast<std::uint8_t>(tag) >
          static_cast<std::uint8_t>(svc_tag::retry_after))
    throw std::runtime_error("svc frame: unknown tag");
  dist::check_schema_header(r);
  return tag;
}

}  // namespace svc
