// The per-quantum advancement contract shared by the shared-memory farm
// worker (sim_engine_node) and the distributed host runtime: run one
// scheduling quantum, fast-forward stalled trajectories to the horizon,
// and report the samples, the service-time record, and completion.
//
// Keeping this in one place is what makes the distributed runtime's
// bit-exactness guarantee durable: both deployments advance engines with
// the same horizon clamp and the same stalled-tail handling.
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/config.hpp"
#include "core/messages.hpp"
#include "util/stopwatch.hpp"

namespace cwcsim {

struct quantum_outcome {
  sample_batch batch;     ///< samples produced this quantum (may be empty)
  quantum_record record;  ///< service-time record (for capture_trace)
  bool finished = false;  ///< trajectory reached t_end
  task_done done;         ///< valid when finished
};

/// Advance `engine` by one quantum of `cfg.quantum` simulated time
/// (clamped to cfg.t_end), sampling every cfg.sample_period.
inline quantum_outcome advance_one_quantum(any_engine& engine,
                                           const sim_config& cfg,
                                           std::uint64_t trajectory_id,
                                           std::uint64_t quantum_index) {
  quantum_outcome out;
  util::stopwatch sw;
  const std::uint64_t steps_before = engine.steps();

  out.batch.trajectory_id = trajectory_id;
  const double horizon = std::min(engine.time() + cfg.quantum, cfg.t_end);
  engine.run_to(horizon, cfg.sample_period, out.batch.samples);
  if (engine.stalled() && engine.time() < cfg.t_end) {
    // No reaction can ever fire again: emit the frozen tail immediately
    // instead of rescheduling a dead trajectory.
    engine.run_to(cfg.t_end, cfg.sample_period, out.batch.samples);
  }

  out.record.trajectory_id = trajectory_id;
  out.record.quantum_index = quantum_index;
  out.record.ssa_steps = engine.steps() - steps_before;
  out.record.wall_ns = sw.elapsed_ns();
  out.record.samples = static_cast<std::uint32_t>(out.batch.samples.size());

  if (engine.time() >= cfg.t_end) {
    out.finished = true;
    out.done.trajectory_id = trajectory_id;
    out.done.quanta = quantum_index + 1;
    out.done.steps = engine.steps();
  }
  return out;
}

}  // namespace cwcsim
