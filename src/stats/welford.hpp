// Numerically stable streaming moments (Welford's algorithm) with the
// parallel-merge extension (Chan et al.), so per-worker partials combine
// exactly — the "mean/variance" statistical engines of the analysis farm.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace stats {

/// The raw accumulator state of a welford — trivially copyable so the
/// wire codecs (dist/wire.cpp) can ship summaries between processes
/// bit-exactly. mean/variance derive from (n, mean, m2) without rounding,
/// so a restored accumulator is indistinguishable from the original.
struct welford_state {
  std::uint64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

class welford {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merge another accumulator (parallel combine).
  void merge(const welford& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double d = o.mean_ - mean_;
    const double n = na + nb;
    mean_ += d * nb / n;
    m2_ += o.m2_ + d * d * na * nb / n;
    n_ += o.n_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }

  /// Population variance (n in the denominator); 0 for n < 1.
  double variance() const noexcept {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
  }

  /// Sample variance (n-1); 0 for n < 2.
  double sample_variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Snapshot the exact accumulator state (for wire transfer).
  welford_state snapshot() const noexcept {
    return welford_state{n_, mean_, m2_, min_, max_};
  }

  /// Rebuild an accumulator bit-identical to the one snapshot() captured.
  static welford from_state(const welford_state& s) noexcept {
    welford w;
    w.n_ = s.n;
    w.mean_ = s.mean;
    w.m2_ = s.m2;
    w.min_ = s.min;
    w.max_ = s.max;
    return w;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace stats
